#include "serve/server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace solsched::serve {
namespace {

const std::vector<double>& latency_bounds_ms() {
  static const std::vector<double> bounds = {0.1, 0.5, 1, 5, 10, 50, 100, 500};
  return bounds;
}

std::uint64_t wall_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// read() the exact byte count; false on EOF/error before completion.
bool read_exact(int fd, std::uint8_t* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// send() everything, MSG_NOSIGNAL so a vanished client cannot SIGPIPE
/// the daemon; false on error.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void json_string(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

/// Fixed-precision fraction for status.json (availability, burn rates).
void json_fraction(std::ostringstream& out, double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", x);
  out << buf;
}

/// Degradation-ladder rung label for a DecisionReply fallback code.
const char* rung_name(std::uint16_t fallback_code) {
  switch (fallback_code) {
    case kFallbackNone: return "hit";
    case kFallbackNoController: return "no_controller";
    case kFallbackCorruptController: return "corrupt";
    case kFallbackBudgetExhausted: return "budget";
    default: return "sched_fallback";  // sched::FallbackReason 1..4.
  }
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      engine_(DecisionEngine::Options{options_.cache_dir,
                                      options_.assume_infer_us}) {
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.workers == 0) options_.workers = 1;
  if (options_.slo.enabled())
    slo_ = std::make_unique<obs::SloEngine>(
        options_.slo, std::vector<std::uint64_t>(kLatencyBoundsUs.begin(),
                                                 kLatencyBoundsUs.end()));
  const std::size_t loaded = engine_.load_all();
  std::fprintf(stderr, "solsched-serve: %zu controller(s) loaded from %s\n",
               loaded, options_.cache_dir.c_str());

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("Server: socket path too long: " +
                             options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("Server: socket(): " +
                             std::string(std::strerror(errno)));
  // A kill -9'd predecessor leaves its socket file behind; rebinding the
  // same address must succeed, so the stale node is removed first.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Server: bind(" + options_.socket_path +
                             "): " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    throw std::runtime_error("Server: listen(): " + err);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  write_status("running");
  accept_thread_ = std::thread([this] { accept_main(); });
  dispatch_thread_ = std::thread([this] {
    // The worker pool: `workers` long-running loop bodies over the bounded
    // queue. ThreadPool::run blocks this dispatcher (a participant) until
    // every loop exits at shutdown.
    pool_ = std::make_unique<util::ThreadPool>(options_.workers);
    pool_->run(options_.workers, [this](std::size_t) { worker_main(); });
  });
  if (!options_.status_path.empty() && options_.status_interval_ms > 0)
    status_thread_ = std::thread([this] { status_main(); });
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  request_stop();

  // Close the listener to unblock accept(). exchange() claims the fd so
  // the accept loop can never see a half-closed descriptor.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every connection reader.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& weak : conns_) {
      if (auto conn = weak.lock()) {
        conn->open.store(false, std::memory_order_release);
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& t : conn_threads_)
      if (t.joinable()) t.join();
    conn_threads_.clear();
  }

  // Wake the workers; they drain the queue with SERVE_SHUTTING_DOWN
  // replies and exit.
  queue_cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  pool_.reset();
  if (status_thread_.joinable()) status_thread_.join();

  ::unlink(options_.socket_path.c_str());
  // Final tick after the status thread is gone: the stopped snapshot and
  // the time-series tail both reflect the very last counters, and a traced
  // session's spans are flushed rather than lost with the process.
  observe_tick();
  if (!options_.trace_path.empty() && obs::trace_events_enabled())
    obs::write_chrome_trace(options_.trace_path);
  write_status("stopped");
}

void Server::accept_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener closed by stop().
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn] { connection_main(conn); });
  }
}

void Server::connection_main(std::shared_ptr<Conn> conn) {
  std::vector<std::uint8_t> header(kFrameHeaderSize);
  std::vector<std::uint8_t> payload;
  while (conn->open.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire)) {
    if (!read_exact(conn->fd, header.data(), header.size())) break;
    FrameHeader fh;
    const FrameVerdict hv = decode_header(header.data(), header.size(), &fh);
    if (hv != FrameVerdict::kOk) {
      // Header-level garbage: the stream has lost framing, so reply with
      // the typed refusal and close — resynchronizing random bytes is not
      // possible, crashing on them is not acceptable.
      stats_.record_malformed();
      OBS_COUNTER_ADD("serve.malformed", 1);
      send_error(conn, ErrorCode::kMalformed,
                 std::string("bad frame header: ") + verdict_name(hv),
                 false);
      break;
    }
    payload.resize(fh.payload_len);
    if (fh.payload_len > 0 &&
        !read_exact(conn->fd, payload.data(), payload.size()))
      break;
    const FrameVerdict pv = verify_payload(fh, payload.data(), payload.size());
    if (pv != FrameVerdict::kOk) {
      // Framing is still aligned (the length was honored), so the
      // connection survives a corrupted payload.
      stats_.record_malformed();
      OBS_COUNTER_ADD("serve.malformed", 1);
      send_error(conn, ErrorCode::kMalformed,
                 std::string("payload rejected: ") + verdict_name(pv), false);
      continue;
    }
    switch (fh.type) {
      case FrameType::kPing:
        send_frame(conn, FrameType::kPong, {}, false);
        break;
      case FrameType::kShutdown:
        send_frame(conn, FrameType::kPong, {}, false);
        request_stop();
        break;
      case FrameType::kReload: {
        std::uint64_t key = 0;
        if (decode_reload(payload.data(), payload.size(), &key) !=
            FrameVerdict::kOk) {
          stats_.record_malformed();
          send_error(conn, ErrorCode::kMalformed, "bad reload payload",
                     false);
          break;
        }
        ReloadReply ack;
        ack.controller_key = key;
        ack.ok = engine_.load_controller(key, &ack.message);
        if (ack.ok) {
          stats_.record_reload();
          OBS_COUNTER_ADD("serve.reloads", 1);
        }
        send_frame(conn, FrameType::kReloadAck, encode_reload_ack(ack),
                   false);
        break;
      }
      case FrameType::kQuery: {
        // Timeline stamps only when the trace sink is armed — the clock
        // reads stay off the obs-off hot path.
        const bool timing = obs::trace_events_enabled();
        const std::uint64_t recv_wall = timing ? obs::wall_us() : 0;
        QueryRequest query;
        if (decode_query(payload.data(), payload.size(), fh.version,
                         &query) != FrameVerdict::kOk) {
          stats_.record_malformed();
          OBS_COUNTER_ADD("serve.malformed", 1);
          send_error(conn, ErrorCode::kMalformed, "bad query payload", true);
          break;
        }
        const std::uint64_t decode_dur =
            timing ? obs::wall_us() - recv_wall : 0;
        handle_query(conn, std::move(query), recv_wall, decode_dur);
        break;
      }
      default:
        // Reply frames arriving at the server are a protocol violation.
        stats_.record_malformed();
        send_error(conn, ErrorCode::kMalformed, "unexpected frame type",
                   false);
        break;
    }
  }
  conn->open.store(false, std::memory_order_release);
  ::close(conn->fd);
}

void Server::handle_query(const std::shared_ptr<Conn>& conn,
                          QueryRequest query, std::uint64_t recv_wall_us,
                          std::uint64_t decode_dur_us) {
  stats_.record_request();
  OBS_COUNTER_ADD("serve.requests", 1);
  if (stopping_.load(std::memory_order_acquire)) {
    send_error(conn, ErrorCode::kShuttingDown, "daemon is draining", true);
    return;
  }
  Job job;
  job.conn = conn;
  job.enqueue_us = obs::now_us();
  job.recv_wall_us = recv_wall_us;
  job.decode_dur_us = decode_dur_us;
  job.enqueue_wall_us = recv_wall_us + decode_dur_us;
  // The effective budget is the tighter of the client's deadline and the
  // server-side cap; 0 on both sides means unbounded.
  std::uint64_t budget_ms = query.deadline_ms;
  if (options_.request_timeout_ms > 0 &&
      (budget_ms == 0 || options_.request_timeout_ms < budget_ms))
    budget_ms = options_.request_timeout_ms;
  job.deadline_us = budget_ms > 0 ? job.enqueue_us + budget_ms * 1000 : 0;
  job.query = std::move(query);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.queue_depth) {
      // Backpressure: the queue is the only unbounded-growth risk on the
      // request path, so it never grows — the reader sheds instead.
      stats_.record_shed();
      OBS_COUNTER_ADD("serve.shed", 1);
      send_error(conn, ErrorCode::kOverloaded, "request queue full", true);
      return;
    }
    queue_.push_back(std::move(job));
    stats_.queue_enter();
    OBS_GAUGE_SET("serve.queue_depth", queue_.size());
  }
  queue_cv_.notify_one();
}

void Server::worker_main() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // Stopping and drained.
      job = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_leave();
    }
    if (stopping_.load(std::memory_order_acquire)) {
      send_error(job.conn, ErrorCode::kShuttingDown, "daemon is draining",
                 true);
      continue;
    }
    process_job(std::move(job));
  }
}

void Server::process_job(Job job) {
  const std::uint64_t now = obs::now_us();
  // Traced requests book a wall-clock stage timeline: every clock read
  // below is gated on this so untraced traffic pays nothing extra.
  const bool traced =
      job.query.trace.active() && obs::trace_events_enabled();
  const std::uint64_t trace_id = job.query.trace.trace_id;
  const std::uint64_t dequeue_wall = traced ? obs::wall_us() : 0;
  // Deadline re-check on dequeue: a request that died waiting in the queue
  // gets the typed timeout, never a late decision the node cannot use.
  if (job.deadline_us > 0 && now >= job.deadline_us) {
    stats_.record_timeout();
    OBS_COUNTER_ADD("serve.timeouts", 1);
    send_error(job.conn, ErrorCode::kTimeout, "deadline expired in queue",
               true);
    if (traced) {
      // Even a timed-out request leaves its trace: the whole server-side
      // story was the queue wait.
      obs::record_span_event("serve.req", job.recv_wall_us,
                             obs::wall_us() - job.recv_wall_us, trace_id);
      obs::record_flow_event("serve.request", trace_id, /*start=*/false,
                             dequeue_wall);
      obs::record_span_event("serve.req.decode", job.recv_wall_us,
                             job.decode_dur_us, trace_id);
      obs::record_span_event("serve.req.queue_wait", job.enqueue_wall_us,
                             dequeue_wall - job.enqueue_wall_us, trace_id);
      obs::record_span_event("serve.req.timeout", dequeue_wall, 0, trace_id);
    }
    return;
  }
  const std::uint64_t remaining_us =
      job.deadline_us > 0 ? job.deadline_us - now
                          : ~std::uint64_t{0};
  DecisionEngine::Outcome outcome;
  try {
    outcome = engine_.decide(job.query, remaining_us);
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error = {ErrorCode::kInternal, e.what()};
  }
  const std::uint64_t engine_end_wall = traced ? obs::wall_us() : 0;
  if (!outcome.ok) {
    send_error(job.conn, outcome.error.code, outcome.error.message, true);
    if (traced) {
      obs::record_span_event("serve.req", job.recv_wall_us,
                             obs::wall_us() - job.recv_wall_us, trace_id);
      obs::record_flow_event("serve.request", trace_id, /*start=*/false,
                             dequeue_wall);
      obs::record_span_event("serve.req.decode", job.recv_wall_us,
                             job.decode_dur_us, trace_id);
      obs::record_span_event("serve.req.queue_wait", job.enqueue_wall_us,
                             dequeue_wall - job.enqueue_wall_us, trace_id);
      obs::record_span_event("serve.req.engine.error", dequeue_wall,
                             engine_end_wall - dequeue_wall, trace_id);
    }
    return;
  }
  const std::uint64_t latency_us = obs::now_us() - job.enqueue_us;
  stats_.record_decision(latency_us, outcome.reply.fallback_code);
  if (outcome.reply.used_fallback) OBS_COUNTER_ADD("serve.fallbacks", 1);
  // Per-rung counters name which step of the degradation ladder answered.
  switch (outcome.reply.fallback_code) {
    case kFallbackNone:
      OBS_COUNTER_ADD("serve.engine.hit", 1);
      break;
    case kFallbackNoController:
      OBS_COUNTER_ADD("serve.engine.no_controller", 1);
      break;
    case kFallbackCorruptController:
      OBS_COUNTER_ADD("serve.engine.corrupt", 1);
      break;
    case kFallbackBudgetExhausted:
      OBS_COUNTER_ADD("serve.engine.budget", 1);
      break;
    default:
      OBS_COUNTER_ADD("serve.engine.sched_fallback", 1);
      break;
  }
  OBS_COUNTER_ADD("serve.decisions", 1);
  OBS_HISTOGRAM_OBSERVE("serve.request_ms", latency_bounds_ms(),
                        static_cast<double>(latency_us) / 1000.0);
  const std::vector<std::uint8_t> reply_payload =
      encode_decision(outcome.reply);
  const std::uint64_t encode_end_wall = traced ? obs::wall_us() : 0;
  send_frame(job.conn, FrameType::kDecision, reply_payload, true);
  if (traced) {
    const std::uint64_t write_end_wall = obs::wall_us();
    // All spans land on this worker thread's track with wall-clock
    // timestamps, so the client's request span (a different process, same
    // axis) encloses them once the two dumps are merged.
    obs::record_span_event("serve.req", job.recv_wall_us,
                           write_end_wall - job.recv_wall_us, trace_id);
    obs::record_flow_event("serve.request", trace_id, /*start=*/false,
                           dequeue_wall);
    obs::record_span_event("serve.req.decode", job.recv_wall_us,
                           job.decode_dur_us, trace_id);
    obs::record_span_event("serve.req.queue_wait", job.enqueue_wall_us,
                           dequeue_wall - job.enqueue_wall_us, trace_id);
    obs::record_span_event(
        std::string("serve.req.engine.") + rung_name(outcome.reply.fallback_code),
        dequeue_wall, engine_end_wall - dequeue_wall, trace_id);
    obs::record_span_event("serve.req.encode", engine_end_wall,
                           encode_end_wall - engine_end_wall, trace_id);
    obs::record_span_event("serve.req.write", encode_end_wall,
                           write_end_wall - encode_end_wall, trace_id);
  }
}

void Server::send_frame(const std::shared_ptr<Conn>& conn, FrameType type,
                        const std::vector<std::uint8_t>& payload,
                        bool query_reply) {
  std::vector<std::uint8_t> frame = encode_frame(type, payload);
  if (query_reply && options_.faults.any()) {
    const std::uint64_t ordinal =
        fault_ordinal_.fetch_add(1, std::memory_order_relaxed);
    switch (options_.faults.decide(ordinal)) {
      case fault::ServeFault::kNone:
        break;
      case fault::ServeFault::kDrop:
        stats_.record_fault_injected();
        return;  // Swallow the reply; the client's retry machinery owns it.
      case fault::ServeFault::kDelay:
        stats_.record_fault_injected();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.faults.delay_ms));
        break;
      case fault::ServeFault::kCorrupt:
        stats_.record_fault_injected();
        // Flip one byte past the header so the client's payload-hash check
        // trips (an empty payload corrupts the hash field itself).
        frame[frame.size() > kFrameHeaderSize ? kFrameHeaderSize : 12] ^=
            0xFF;
        break;
    }
  }
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open.load(std::memory_order_acquire)) return;
  if (!write_all(conn->fd, frame.data(), frame.size()))
    conn->open.store(false, std::memory_order_release);
}

void Server::send_error(const std::shared_ptr<Conn>& conn, ErrorCode code,
                        const std::string& message, bool query_reply) {
  if (code != ErrorCode::kMalformed) {
    stats_.record_error();
    OBS_COUNTER_ADD("serve.errors", 1);
  }
  send_frame(conn, FrameType::kError, encode_error({code, message}),
             query_reply);
}

std::string Server::status_json(const std::string& state) const {
  const ServeStats::Snapshot s = stats_.snapshot();
  std::ostringstream out;
  out << "{\n";
  out << "  \"status\": \"solsched-serve-v1\",\n";
  out << "  \"state\": \"" << state << "\",\n";
  out << "  \"wall_ms\": " << wall_ms_now() << ",\n";
  out << "  \"pid\": " << ::getpid() << ",\n";
  out << "  \"socket\": ";
  json_string(out, options_.socket_path);
  out << ",\n";
  out << "  \"controllers\": " << engine_.controller_count() << ",\n";
  out << "  \"workers\": " << options_.workers << ",\n";
  out << "  \"queue_capacity\": " << options_.queue_depth << ",\n";
  out << "  \"queue_depth\": " << s.queue_depth << ",\n";
  out << "  \"queue_peak\": " << s.queue_peak << ",\n";
  out << "  \"requests\": " << s.requests << ",\n";
  out << "  \"decisions\": " << s.decisions << ",\n";
  out << "  \"fallbacks\": " << s.fallbacks << ",\n";
  out << "  \"fallback_no_controller\": " << s.fallback_no_controller
      << ",\n";
  out << "  \"fallback_corrupt\": " << s.fallback_corrupt << ",\n";
  out << "  \"fallback_budget\": " << s.fallback_budget << ",\n";
  out << "  \"fallback_sched\": " << s.fallback_sched << ",\n";
  out << "  \"malformed\": " << s.malformed << ",\n";
  out << "  \"shed\": " << s.shed << ",\n";
  out << "  \"timeouts\": " << s.timeouts << ",\n";
  out << "  \"errors\": " << s.errors << ",\n";
  out << "  \"reloads\": " << s.reloads << ",\n";
  out << "  \"faults_injected\": " << s.faults_injected << ",\n";
  out << "  \"latency_count\": " << s.latency_count << ",\n";
  out << "  \"latency_sum_us\": " << s.latency_sum_us << ",\n";
  out << "  \"p50_us\": " << s.p50_us << ",\n";
  out << "  \"p99_us\": " << s.p99_us << ",\n";
  // Lifetime availability: good verdicts over all verdicts. `errors`
  // already counts every refusal (shed and timeouts included — see
  // send_error), so the denominator is decisions + errors. An idle daemon
  // is fully available.
  const std::uint64_t verdicts = s.decisions + s.errors;
  const double availability =
      verdicts > 0
          ? static_cast<double>(s.decisions) / static_cast<double>(verdicts)
          : 1.0;
  out << "  \"availability\": ";
  json_fraction(out, availability);
  if (slo_) {
    const obs::SloEngine::Status slo = slo_->status();
    const obs::SloConfig& cfg = slo_->config();
    out << ",\n  \"slo\": {\n";
    out << "    \"target_availability\": ";
    json_fraction(out, cfg.target_availability);
    out << ",\n";
    out << "    \"target_p99_us\": " << cfg.target_p99_us << ",\n";
    out << "    \"fast_window_s\": " << cfg.fast_window_s << ",\n";
    out << "    \"slow_window_s\": " << cfg.slow_window_s << ",\n";
    out << "    \"burn_alert\": ";
    json_fraction(out, cfg.burn_alert);
    out << ",\n";
    out << "    \"availability_fast\": ";
    json_fraction(out, slo.availability_fast);
    out << ",\n";
    out << "    \"availability_slow\": ";
    json_fraction(out, slo.availability_slow);
    out << ",\n";
    out << "    \"burn_fast\": ";
    json_fraction(out, slo.burn_fast);
    out << ",\n";
    out << "    \"burn_slow\": ";
    json_fraction(out, slo.burn_slow);
    out << ",\n";
    out << "    \"p99_fast_us\": " << slo.p99_fast_us << ",\n";
    out << "    \"p99_slow_us\": " << slo.p99_slow_us << ",\n";
    out << "    \"alert_availability\": "
        << (slo.alert_availability ? "true" : "false") << ",\n";
    out << "    \"alert_p99\": " << (slo.alert_p99 ? "true" : "false")
        << ",\n";
    out << "    \"alert\": " << (slo.alerting() ? "true" : "false") << "\n";
    out << "  }";
  }
  out << "\n}\n";
  return out.str();
}

void Server::observe_tick() {
  if (slo_) {
    const ServeStats::Snapshot s = stats_.snapshot();
    obs::SloSample sample;
    sample.wall_ms = wall_ms_now();
    // `errors` is the superset refusal counter (shed, timeouts, internal —
    // everything except malformed, which never reached a verdict).
    sample.bad = s.errors;
    sample.total = s.decisions + s.errors;
    sample.latency_buckets.assign(s.latency_buckets.begin(),
                                  s.latency_buckets.end());
    const obs::SloEngine::Status slo = slo_->observe(sample);
    OBS_GAUGE_SET("serve.slo.availability_fast", slo.availability_fast);
    OBS_GAUGE_SET("serve.slo.availability_slow", slo.availability_slow);
    OBS_GAUGE_SET("serve.slo.burn_fast", slo.burn_fast);
    OBS_GAUGE_SET("serve.slo.burn_slow", slo.burn_slow);
    OBS_GAUGE_SET("serve.slo.p99_fast_us", slo.p99_fast_us);
    if (slo.alerting()) OBS_COUNTER_ADD("serve.slo.alert_ticks", 1);
  }
  if (!options_.timeseries_path.empty() && obs::enabled()) {
    if (!tsdb_)
      tsdb_ = std::make_unique<obs::TimeseriesStore>(
          options_.timeseries_capacity);
    tsdb_->sample(wall_ms_now(), obs::MetricsRegistry::global().snapshot());
    tsdb_->write_jsonl(options_.timeseries_path);
  }
}

void Server::write_status(const std::string& state) const {
  if (options_.status_path.empty()) return;
  const std::string tmp = options_.status_path + ".tmp";
  const std::string text = status_json(state);
  FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) return;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  std::fflush(file);
  ::fsync(::fileno(file));
  std::fclose(file);
  if (ok) std::rename(tmp.c_str(), options_.status_path.c_str());
}

void Server::status_main() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_requested_) {
    stop_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.status_interval_ms));
    if (stop_requested_) break;
    lock.unlock();
    observe_tick();
    write_status("running");
    lock.lock();
  }
}

}  // namespace solsched::serve
