// Client library of the solsched-serve daemon.
//
// A ServeClient owns one connection to the daemon and makes request loss
// someone else's problem: every call retries transient failures (connect
// refused, mid-request EOF, receive timeout, corrupted reply frame,
// SERVE_OVERLOADED / SERVE_TIMEOUT / SERVE_SHUTTING_DOWN refusals) with
// exponential backoff plus deterministic seeded jitter, reconnecting from
// scratch each attempt — so a kill -9 of the daemon mid-request is
// survivable end to end: the client backs off while the daemon restarts,
// then the retried query lands on the new process. Permanent refusals
// (SERVE_MALFORMED, SERVE_BAD_REQUEST, SERVE_INTERNAL) are returned to
// the caller immediately: retrying a request the server understood and
// rejected would loop forever.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace solsched::serve {

class ServeClient {
 public:
  struct Options {
    std::string socket_path;
    std::size_t max_attempts = 8;       ///< Total tries per call.
    std::uint64_t base_backoff_ms = 20; ///< Doubled per attempt.
    std::uint64_t max_backoff_ms = 2000;
    std::uint64_t recv_timeout_ms = 2000;  ///< Per-attempt receive budget.
    std::uint64_t jitter_seed = 1;      ///< Deterministic backoff jitter.
  };

  enum class Result {
    kOk,        ///< Decision (or ack/pong) received.
    kRefused,   ///< Typed permanent server error; see last_error().
    kExhausted, ///< Every attempt failed transiently; see last_error().
  };

  explicit ServeClient(Options options);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one query; fills `*reply` on kOk.
  Result query(const QueryRequest& request, DecisionReply* reply);

  /// Liveness probe.
  Result ping();

  /// Asks the daemon to hot-reload one controller; fills `*ack` on kOk
  /// (ack->ok reports the reload outcome — a failed reload is a valid
  /// answer, not a transport failure).
  Result reload(std::uint64_t controller_key, ReloadReply* ack);

  /// Asks the daemon to drain and exit.
  Result shutdown_server();

  const ErrorReply& last_error() const noexcept { return last_error_; }
  std::size_t reconnects() const noexcept { return reconnects_; }
  std::size_t retries() const noexcept { return retries_; }

  // Transient refusals seen across all attempts. Retries mask these from
  // the per-call Result, but an SLO-minded caller (loadgen) still wants to
  // know how often the daemon shed or timed out under it.
  std::size_t seen_overloaded() const noexcept { return seen_overloaded_; }
  std::size_t seen_timeout() const noexcept { return seen_timeout_; }
  std::size_t seen_shutting_down() const noexcept {
    return seen_shutting_down_;
  }

 private:
  enum class AttemptStatus {
    kDone,       ///< Got the expected reply.
    kTransient,  ///< Worth a backoff + retry.
    kPermanent,  ///< Typed refusal; stop retrying.
  };

  /// One round trip over a (re)established connection. `version` is the
  /// wire version stamped on the outgoing frame (v2 for traced queries).
  AttemptStatus attempt(FrameType type,
                        const std::vector<std::uint8_t>& payload,
                        FrameType expected, std::vector<std::uint8_t>* out,
                        std::uint16_t version);

  /// Runs the retry loop around attempt().
  Result call(FrameType type, const std::vector<std::uint8_t>& payload,
              FrameType expected, std::vector<std::uint8_t>* out,
              std::uint16_t version = kProtocolVersion);

  bool connect_if_needed();
  void disconnect();
  void backoff(std::size_t attempt_index);

  Options options_;
  int fd_ = -1;
  util::Rng rng_;
  ErrorReply last_error_;
  std::size_t reconnects_ = 0;
  std::size_t retries_ = 0;
  std::size_t seen_overloaded_ = 0;
  std::size_t seen_timeout_ = 0;
  std::size_t seen_shutting_down_ = 0;
};

}  // namespace solsched::serve
