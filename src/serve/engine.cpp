#include "serve/engine.hpp"

#include <cstdio>
#include <filesystem>
#include <limits>
#include <utility>

#include "campaign/artifact_cache.hpp"
#include "obs/span.hpp"
#include "sched/proposed.hpp"

namespace solsched::serve {
namespace {

/// The no-controller degradation rung: exactly what the offline
/// LsaInterScheduler::begin_period returns — keep the current capacitor,
/// enable all tasks — tagged with the serve-layer fallback code.
DecisionReply bare_lsa_reply(const QueryRequest& request,
                             std::uint16_t fallback_code) {
  DecisionReply reply;
  reply.fallback_code = fallback_code;
  reply.used_fallback = true;
  reply.controller_key = request.controller_key;
  return reply;
}

/// Maps a PeriodPlan + decoded DBN outputs onto the wire reply.
DecisionReply plan_to_reply(const nvp::PeriodPlan& plan,
                            const QueryRequest& request) {
  DecisionReply reply;
  reply.fallback_code = static_cast<std::uint16_t>(plan.fallback_code);
  reply.used_fallback = plan.used_fallback;
  reply.has_select_cap = plan.select_cap.has_value();
  reply.select_cap = plan.select_cap
                         ? static_cast<std::uint32_t>(*plan.select_cap)
                         : 0;
  reply.controller_key = request.controller_key;
  return reply;
}

}  // namespace

DecisionEngine::DecisionEngine(Options options)
    : options_(std::move(options)) {
  table_.store(std::make_shared<const Table>(), std::memory_order_release);
}

std::size_t DecisionEngine::load_all() {
  std::size_t loaded = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.cache_dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() != ".controller") continue;
    // <016x-hex>.controller
    const std::string stem = entry.path().stem().string();
    if (stem.size() != 16) continue;
    std::uint64_t key = 0;
    bool hex = true;
    for (char c : stem) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else { hex = false; break; }
      key = (key << 4) | static_cast<std::uint64_t>(digit);
    }
    if (!hex) continue;
    std::string message;
    if (load_controller(key, &message)) {
      ++loaded;
    } else {
      std::fprintf(stderr, "solsched-serve: skipping %s: %s\n", name.c_str(),
                   message.c_str());
    }
  }
  return loaded;
}

bool DecisionEngine::load_controller(std::uint64_t key, std::string* message) {
  campaign::ArtifactCache cache(options_.cache_dir);
  auto controller = std::make_shared<core::TrainedController>();
  if (!cache.load(key, controller.get())) {
    if (message) *message = "artifact missing or corrupt: " + cache.path_of(key);
    return false;
  }
  // A controller the wire format cannot carry must not enter the table:
  // rejecting it here turns an impossible reply into the same degradation
  // path as a corrupt artifact.
  if (controller->model.capacities_f.size() > kMaxCaps ||
      controller->model.n_tasks > kMaxTasks) {
    if (message)
      *message = "controller exceeds wire bounds (caps or tasks)";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(reload_mutex_);
    auto next = std::make_shared<Table>(*snapshot());
    (*next)[key] = std::move(controller);
    table_.store(std::shared_ptr<const Table>(std::move(next)),
                 std::memory_order_release);
  }
  if (message) *message = "loaded " + cache.path_of(key);
  return true;
}

bool DecisionEngine::has_controller(std::uint64_t key) const {
  const auto table = snapshot();
  return table->find(key) != table->end();
}

std::size_t DecisionEngine::controller_count() const {
  return snapshot()->size();
}

std::uint64_t DecisionEngine::expected_infer_us() const noexcept {
  return options_.assume_infer_us > 0
             ? options_.assume_infer_us
             : measured_infer_us_.load(std::memory_order_relaxed);
}

DecisionEngine::Outcome DecisionEngine::decide(const QueryRequest& request,
                                               std::uint64_t remaining_us) {
  Outcome out;
  const auto table = snapshot();
  const auto it = table->find(request.controller_key);
  if (it == table->end()) {
    out.reply = bare_lsa_reply(request, kFallbackNoController);
    return out;
  }
  const core::TrainedController& controller = *it->second;

  // Request/controller shape agreement: a mismatch is a client bug, not a
  // degradation case — guessing a decision for the wrong bank would be
  // worse than refusing.
  const std::size_t n_caps = controller.node.capacities_f.size();
  if (request.cap_voltages.size() != n_caps) {
    out.ok = false;
    out.error = {ErrorCode::kBadRequest,
                 "cap_voltages count does not match the controller's bank "
                 "(expected " +
                     std::to_string(n_caps) + ", got " +
                     std::to_string(request.cap_voltages.size()) + ")"};
    return out;
  }
  if (request.selected_cap >= n_caps) {
    out.ok = false;
    out.error = {ErrorCode::kBadRequest, "selected_cap beyond the bank"};
    return out;
  }

  // Reconstruct the node state the offline scheduler would see.
  storage::CapacitorBank bank = controller.node.make_bank();
  for (std::size_t h = 0; h < n_caps; ++h) {
    bank.at(h).set_voltage(request.cap_voltages[h]);
    if ((request.dead_mask >> h) & 1u) bank.at(h).kill();
  }
  bank.select(request.selected_cap);

  // Budget rung: when the estimated inference cost cannot fit in what is
  // left of the request's deadline, serve the cheap LSA fallback now
  // instead of blowing the deadline with a doomed DBN pass.
  if (expected_infer_us() > remaining_us) {
    auto plan = sched::lsa_fallback_plan(
        bank, sched::FallbackReason::kNone);
    out.reply = plan_to_reply(plan, request);
    out.reply.fallback_code = kFallbackBudgetExhausted;
    return out;
  }

  nvp::PeriodContext ctx;
  ctx.day = request.day;
  ctx.period = request.period;
  ctx.grid = &controller.node.grid;
  ctx.bank = &bank;
  ctx.accumulated_dmr = request.accumulated_dmr;
  ctx.last_period_solar_w = request.last_period_solar_w;

  const std::uint64_t t0 = obs::now_us();
  // Built through the scheduler registry's "proposed" entry (via
  // core::make_proposed), so a served decision is constructed exactly like
  // an offline comparison row — the offline-parity contract holds by
  // construction, not by keeping two call sites in sync.
  auto scheduler = core::make_proposed(controller);
  const nvp::PeriodPlan plan = scheduler->begin_period(ctx);
  const std::uint64_t cost_us = obs::now_us() - t0;

  // Ratchet the measured cost estimate up to the observed maximum.
  std::uint64_t seen = measured_infer_us_.load(std::memory_order_relaxed);
  while (cost_us > seen &&
         !measured_infer_us_.compare_exchange_weak(
             seen, cost_us, std::memory_order_relaxed)) {
  }

  out.reply = plan_to_reply(plan, request);
  out.reply.alpha = scheduler->last_decision().alpha;
  out.reply.intra_mode = scheduler->intra_mode();
  const std::vector<bool>& te = scheduler->last_decision().te;
  out.reply.n_tasks = static_cast<std::uint32_t>(te.size());
  out.reply.te_mask = 0;
  for (std::size_t n = 0; n < te.size(); ++n)
    if (te[n]) out.reply.te_mask |= (std::uint64_t{1} << n);
  if (plan.used_fallback) {
    // A sched-layer fallback (dead cap etc.) serves the LSA plan: te and α
    // are not part of that decision, so the reply carries the neutral
    // values the offline baseline implies.
    out.reply.alpha = 1.0;
    out.reply.intra_mode = false;
    out.reply.n_tasks = 0;
    out.reply.te_mask = 0;
  }
  return out;
}

}  // namespace solsched::serve
