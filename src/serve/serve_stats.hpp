// Always-on request-path statistics of the solsched-serve daemon.
//
// The daemon's status.json must be truthful even in SOLSCHED_OBS-off runs
// (the tier-1 drill and `solsched-inspect serve` read it unconditionally),
// so these counters do not ride the obs registry: they are a fixed set of
// relaxed atomics plus one fixed-bucket latency histogram, cheap enough to
// update on every request. The obs metrics mirror the same facts behind
// the usual one-branch enabled() contract for runs that want the full
// registry/span machinery.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace solsched::serve {

/// Upper bounds (µs) of the request-latency buckets, plus an implicit
/// overflow bucket. Spans connect-to-reply times from sub-50µs cache hits
/// to pathological half-second stalls.
inline constexpr std::array<std::uint64_t, 12> kLatencyBoundsUs = {
    50,    100,   200,    500,    1000,   2000,
    5000,  10000, 20000,  50000,  100000, 500000};

/// Thread-safe rolling counters of one server's lifetime.
class ServeStats {
 public:
  void record_request() noexcept { requests_.fetch_add(1, kRelaxed); }
  /// `fallback_code` is the DecisionReply code: 0 = the DBN plan was
  /// served; 1..4 = a sched-layer fallback; 16/17/18 = the serve-layer
  /// degradation rungs. Each rung keeps its own counter so status.json
  /// (and `solsched-inspect serve`) can say *which* rung a degraded
  /// deployment is standing on, not just that it degraded.
  void record_decision(std::uint64_t latency_us,
                       std::uint16_t fallback_code) noexcept;
  void record_malformed() noexcept { malformed_.fetch_add(1, kRelaxed); }
  void record_shed() noexcept { shed_.fetch_add(1, kRelaxed); }
  void record_timeout() noexcept { timeouts_.fetch_add(1, kRelaxed); }
  void record_error() noexcept { errors_.fetch_add(1, kRelaxed); }
  void record_reload() noexcept { reloads_.fetch_add(1, kRelaxed); }
  void record_fault_injected() noexcept { faults_.fetch_add(1, kRelaxed); }

  /// Queue-depth tracking (current and high-water mark).
  void queue_enter() noexcept;
  void queue_leave() noexcept { depth_.fetch_sub(1, kRelaxed); }

  struct Snapshot {
    std::uint64_t requests = 0;
    std::uint64_t decisions = 0;
    std::uint64_t fallbacks = 0;
    /// Degradation-ladder rung counts (subsets of `fallbacks`).
    std::uint64_t fallback_no_controller = 0;  ///< Code 16.
    std::uint64_t fallback_corrupt = 0;        ///< Code 17.
    std::uint64_t fallback_budget = 0;         ///< Code 18.
    std::uint64_t fallback_sched = 0;          ///< Codes 1..4.
    std::uint64_t malformed = 0;
    std::uint64_t shed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t errors = 0;
    std::uint64_t reloads = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_peak = 0;
    std::uint64_t latency_count = 0;
    std::uint64_t latency_sum_us = 0;
    std::uint64_t p50_us = 0;  ///< Bucket upper bound; 0 when empty.
    std::uint64_t p99_us = 0;
    /// Raw cumulative bucket counts (kLatencyBoundsUs layout + overflow),
    /// for consumers that window the distribution (the SLO engine).
    std::array<std::uint64_t, kLatencyBoundsUs.size() + 1> latency_buckets{};
  };
  Snapshot snapshot() const noexcept;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  /// Nearest-rank percentile over the bucket counts: the upper bound of
  /// the bucket containing the rank'th sample (overflow bucket reports
  /// 2x the last bound as a sentinel magnitude).
  static std::uint64_t percentile_us(
      const std::array<std::uint64_t, kLatencyBoundsUs.size() + 1>& counts,
      std::uint64_t total, double q) noexcept;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
  std::atomic<std::uint64_t> fallback_no_controller_{0};
  std::atomic<std::uint64_t> fallback_corrupt_{0};
  std::atomic<std::uint64_t> fallback_budget_{0};
  std::atomic<std::uint64_t> fallback_sched_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> depth_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> latency_count_{0};
  std::atomic<std::uint64_t> latency_sum_us_{0};
  std::array<std::atomic<std::uint64_t>, kLatencyBoundsUs.size() + 1>
      buckets_{};
};

}  // namespace solsched::serve
