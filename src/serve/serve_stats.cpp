#include "serve/serve_stats.hpp"

namespace solsched::serve {

void ServeStats::record_decision(std::uint64_t latency_us,
                                 std::uint16_t fallback_code) noexcept {
  decisions_.fetch_add(1, kRelaxed);
  if (fallback_code != 0) {
    fallbacks_.fetch_add(1, kRelaxed);
    switch (fallback_code) {
      case 16: fallback_no_controller_.fetch_add(1, kRelaxed); break;
      case 17: fallback_corrupt_.fetch_add(1, kRelaxed); break;
      case 18: fallback_budget_.fetch_add(1, kRelaxed); break;
      default: fallback_sched_.fetch_add(1, kRelaxed); break;
    }
  }
  latency_count_.fetch_add(1, kRelaxed);
  latency_sum_us_.fetch_add(latency_us, kRelaxed);
  std::size_t bucket = kLatencyBoundsUs.size();  // Overflow by default.
  for (std::size_t i = 0; i < kLatencyBoundsUs.size(); ++i) {
    if (latency_us <= kLatencyBoundsUs[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, kRelaxed);
}

void ServeStats::queue_enter() noexcept {
  const std::uint64_t depth = depth_.fetch_add(1, kRelaxed) + 1;
  std::uint64_t peak = peak_.load(kRelaxed);
  while (depth > peak &&
         !peak_.compare_exchange_weak(peak, depth, kRelaxed)) {
  }
}

std::uint64_t ServeStats::percentile_us(
    const std::array<std::uint64_t, kLatencyBoundsUs.size() + 1>& counts,
    std::uint64_t total, double q) noexcept {
  if (total == 0) return 0;
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(q * total).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank * 1.0 < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank)
      return i < kLatencyBoundsUs.size() ? kLatencyBoundsUs[i]
                                         : 2 * kLatencyBoundsUs.back();
  }
  return 2 * kLatencyBoundsUs.back();
}

ServeStats::Snapshot ServeStats::snapshot() const noexcept {
  Snapshot s;
  s.requests = requests_.load(kRelaxed);
  s.decisions = decisions_.load(kRelaxed);
  s.fallbacks = fallbacks_.load(kRelaxed);
  s.fallback_no_controller = fallback_no_controller_.load(kRelaxed);
  s.fallback_corrupt = fallback_corrupt_.load(kRelaxed);
  s.fallback_budget = fallback_budget_.load(kRelaxed);
  s.fallback_sched = fallback_sched_.load(kRelaxed);
  s.malformed = malformed_.load(kRelaxed);
  s.shed = shed_.load(kRelaxed);
  s.timeouts = timeouts_.load(kRelaxed);
  s.errors = errors_.load(kRelaxed);
  s.reloads = reloads_.load(kRelaxed);
  s.faults_injected = faults_.load(kRelaxed);
  s.queue_depth = depth_.load(kRelaxed);
  s.queue_peak = peak_.load(kRelaxed);
  s.latency_count = latency_count_.load(kRelaxed);
  s.latency_sum_us = latency_sum_us_.load(kRelaxed);
  std::array<std::uint64_t, kLatencyBoundsUs.size() + 1> counts{};
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = buckets_[i].load(kRelaxed);
  s.p50_us = percentile_us(counts, s.latency_count, 0.50);
  s.p99_us = percentile_us(counts, s.latency_count, 0.99);
  s.latency_buckets = counts;
  return s;
}

}  // namespace solsched::serve
