// The solsched-serve daemon core: socket accept loop, bounded request
// queue, worker pool, backpressure, timeouts and the status file.
//
// Threading model (DESIGN.md §16):
//  * one accept thread, one connection-reader thread per client;
//  * a bounded FIFO between readers and a util::ThreadPool of decision
//    workers — a reader that finds the queue full sheds the request with a
//    typed SERVE_OVERLOADED reply immediately (backpressure is explicit,
//    memory stays bounded, the daemon never stalls its readers);
//  * workers re-check each request's deadline on dequeue (a request that
//    died waiting gets SERVE_TIMEOUT, not a late decision) and pass the
//    remaining budget to the engine, which degrades to the LSA fallback
//    when inference cannot fit;
//  * one status thread rewrites status.json (tmp → rename, never torn) on
//    a fixed cadence and a final "stopped" snapshot on shutdown.
//
// Every reply to a query passes the optional ServeFaultPlan hook
// (drop/delay/corrupt), which the adversarial client tests drive.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/serve_faults.hpp"
#include "obs/slo.hpp"
#include "obs/tsdb.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_stats.hpp"
#include "util/thread_pool.hpp"

namespace solsched::serve {

class Server {
 public:
  struct Options {
    std::string socket_path;   ///< AF_UNIX listening address.
    std::string cache_dir;     ///< Campaign ArtifactCache with controllers.
    std::string status_path;   ///< status.json location; "" disables it.
    std::size_t workers = 2;   ///< Decision worker threads.
    std::size_t queue_depth = 64;  ///< Bounded queue capacity (>= 1).
    /// Server-side cap on any request's budget (ms); the effective deadline
    /// is the tighter of this and the request's own deadline_ms. 0 = none.
    std::uint64_t request_timeout_ms = 1000;
    std::uint64_t status_interval_ms = 500;  ///< 0 = status only on stop.
    std::uint64_t assume_infer_us = 0;       ///< Engine budget override.
    fault::ServeFaultPlan faults{};          ///< Reply-path fault hook.
    /// Chrome trace dump written on graceful stop (when the sink is
    /// armed); "" disables the flush.
    std::string trace_path;
    /// timeseries.jsonl location; "" disables the store. Sampling rides
    /// the status cadence and is additionally gated on obs::enabled(), so
    /// an obs-off run never allocates the ring.
    std::string timeseries_path;
    std::size_t timeseries_capacity = 720;  ///< Points retained (ring).
    /// SLO targets; default-constructed = SLO evaluation off.
    obs::SloConfig slo{};
  };

  /// Loads every cached controller, binds and listens. Stale socket files
  /// from a killed predecessor are unlinked before bind — a kill -9 must
  /// not brick the address. Throws std::runtime_error on socket failure.
  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept, worker and status threads. Call once.
  void start();

  /// Graceful stop: closes the listener, drains readers, answers queued
  /// requests with SERVE_SHUTTING_DOWN, joins every thread and writes the
  /// final "stopped" status. Idempotent.
  void stop();

  /// Blocks until a client kShutdown frame (or request_stop()) arrives.
  void wait();

  /// Arms the same latch wait() watches; safe from any thread.
  void request_stop();

  /// True once a kShutdown frame or request_stop() armed the latch
  /// (pollable alternative to wait() for signal-driven main loops).
  bool stop_requested() const {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    return stop_requested_;
  }

  DecisionEngine& engine() noexcept { return engine_; }
  ServeStats::Snapshot stats() const { return stats_.snapshot(); }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

  /// The status.json bytes for the given lifecycle state.
  std::string status_json(const std::string& state) const;

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };
  struct Job {
    std::shared_ptr<Conn> conn;
    QueryRequest query;
    std::uint64_t enqueue_us = 0;
    std::uint64_t deadline_us = 0;  ///< Absolute steady µs; 0 = unbounded.
    /// Wall-clock request timeline (0 unless the trace sink is armed):
    /// frame fully read at recv_wall_us, decode took decode_dur_us, the
    /// job entered the queue at enqueue_wall_us.
    std::uint64_t recv_wall_us = 0;
    std::uint64_t decode_dur_us = 0;
    std::uint64_t enqueue_wall_us = 0;
  };

  void accept_main();
  void connection_main(std::shared_ptr<Conn> conn);
  void worker_main();
  void status_main();
  void handle_query(const std::shared_ptr<Conn>& conn, QueryRequest query,
                    std::uint64_t recv_wall_us, std::uint64_t decode_dur_us);
  void process_job(Job job);

  /// One SLO + time-series sampling step (status thread; also once during
  /// stop() after that thread joined, so the final tick sees the last
  /// counters).
  void observe_tick();

  /// Encodes and writes one frame; query replies pass the fault hook.
  void send_frame(const std::shared_ptr<Conn>& conn, FrameType type,
                  const std::vector<std::uint8_t>& payload,
                  bool query_reply);
  void send_error(const std::shared_ptr<Conn>& conn, ErrorCode code,
                  const std::string& message, bool query_reply);

  void write_status(const std::string& state) const;

  Options options_;
  DecisionEngine engine_;
  ServeStats stats_;
  std::unique_ptr<obs::SloEngine> slo_;        ///< Null when SLO-free.
  std::unique_ptr<obs::TimeseriesStore> tsdb_; ///< Lazy; status thread only.

  // Atomic: stop() closes the listener from another thread while
  // accept_main() is reading it into accept().
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> fault_ordinal_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  mutable std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;

  std::mutex conn_mutex_;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;

  std::thread accept_thread_;
  std::thread dispatch_thread_;  ///< Drives the worker pool's run().
  std::thread status_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace solsched::serve
