#include "fault/fault_plan.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace solsched::fault {
namespace {

double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

double parse_value(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan::parse: bad value for " + key);
  }
  if (used != text.size() || !std::isfinite(value))
    throw std::invalid_argument("FaultPlan::parse: bad value for " + key);
  return value;
}

}  // namespace

bool FaultPlan::any() const noexcept {
  return blackout.rate_per_day > 0.0 || sensor.dropout_prob > 0.0 ||
         sensor.glitch_prob > 0.0 || aging.capacity_fade_per_day > 0.0 ||
         aging.leakage_growth_per_day > 0.0 || aging.dead_cap_prob > 0.0 ||
         controller.corrupt_prob > 0.0;
}

FaultPlan FaultPlan::scaled(double intensity) const {
  if (!(intensity >= 0.0))
    throw std::invalid_argument("FaultPlan::scaled: intensity must be >= 0");
  FaultPlan out = *this;
  out.blackout.rate_per_day *= intensity;
  out.sensor.dropout_prob = clamp01(sensor.dropout_prob * intensity);
  out.sensor.glitch_prob = clamp01(sensor.glitch_prob * intensity);
  out.aging.capacity_fade_per_day =
      clamp01(aging.capacity_fade_per_day * intensity);
  out.aging.leakage_growth_per_day = aging.leakage_growth_per_day * intensity;
  out.aging.dead_cap_prob = clamp01(aging.dead_cap_prob * intensity);
  out.controller.corrupt_prob = clamp01(controller.corrupt_prob * intensity);
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("FaultPlan::parse: expected key=value, got " +
                                  item);
    const std::string key = item.substr(0, eq);
    const std::string text = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_value(key, text));
    } else if (key == "blackout") {
      plan.blackout.rate_per_day = parse_value(key, text);
    } else if (key == "blackout-slots") {
      plan.blackout.mean_slots = parse_value(key, text);
    } else if (key == "dropout") {
      plan.sensor.dropout_prob = clamp01(parse_value(key, text));
    } else if (key == "glitch") {
      plan.sensor.glitch_prob = clamp01(parse_value(key, text));
    } else if (key == "glitch-gain") {
      plan.sensor.glitch_gain = parse_value(key, text);
    } else if (key == "cap-fade") {
      plan.aging.capacity_fade_per_day = clamp01(parse_value(key, text));
    } else if (key == "leak-growth") {
      plan.aging.leakage_growth_per_day = parse_value(key, text);
    } else if (key == "dead-cap") {
      plan.aging.dead_cap_prob = clamp01(parse_value(key, text));
    } else if (key == "corrupt") {
      plan.controller.corrupt_prob = clamp01(parse_value(key, text));
    } else {
      throw std::invalid_argument("FaultPlan::parse: unknown key " + key);
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "seed " << seed;
  if (blackout.rate_per_day > 0.0)
    out << ", blackout " << blackout.rate_per_day << "/day x "
        << blackout.mean_slots << " slots";
  if (sensor.dropout_prob > 0.0) out << ", dropout " << sensor.dropout_prob;
  if (sensor.glitch_prob > 0.0)
    out << ", glitch " << sensor.glitch_prob << " (gain "
        << sensor.glitch_gain << ")";
  if (aging.capacity_fade_per_day > 0.0)
    out << ", cap fade " << aging.capacity_fade_per_day << "/day";
  if (aging.leakage_growth_per_day > 0.0)
    out << ", leak growth " << aging.leakage_growth_per_day << "/day";
  if (aging.dead_cap_prob > 0.0) out << ", dead cap p " << aging.dead_cap_prob;
  if (controller.corrupt_prob > 0.0)
    out << ", controller corrupt " << controller.corrupt_prob;
  if (!any()) out << ", inactive";
  return out.str();
}

}  // namespace solsched::fault
