// Reply-path fault injection for the solsched-serve daemon.
//
// The offline FaultPlan models what a deployed *node* suffers (blackouts,
// sensor glitches, aging); a ServeFaultPlan models what a serving *network
// path* suffers: replies that are dropped (client sees EOF / timeout),
// delayed (client-side deadline pressure), or corrupted in flight (frame
// hash mismatch on receipt). It exists to drive the adversarial serve
// tests and the tier-1 kill/restart drill's client-resilience claims —
// the client library must survive every one of these deterministically.
//
// Same design rules as src/fault: the plan is pure seeded configuration
// parsed from a compact `key=value,...` spec, and decisions are a pure
// function of (seed, reply ordinal) — independent of thread interleaving,
// so two runs of the same drill misbehave on exactly the same replies.
#pragma once

#include <cstdint>
#include <string>

namespace solsched::fault {

/// What the fault hook does to one outgoing reply.
enum class ServeFault : std::uint8_t {
  kNone = 0,
  kDrop = 1,     ///< Swallow the reply; the client sees silence then EOF.
  kDelay = 2,    ///< Sleep delay_ms before writing the reply.
  kCorrupt = 3,  ///< Flip bytes in the written frame (hash check must trip).
};

/// Seeded reply-path fault scenario. Probabilities are per reply and
/// mutually exclusive, drawn in drop > corrupt > delay priority.
struct ServeFaultPlan {
  std::uint64_t seed = 1;
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double corrupt_prob = 0.0;
  std::uint32_t delay_ms = 50;  ///< Sleep applied on kDelay replies.

  /// True when any probability is non-zero. An inactive plan must leave
  /// the reply path byte- and timing-identical to having no hook at all.
  bool any() const noexcept;

  /// The fault applied to reply number `ordinal` (0-based, assigned in
  /// reply-send order). Deterministic: depends only on (seed, ordinal).
  ServeFault decide(std::uint64_t ordinal) const noexcept;

  /// Parses `key=value[,key=value...]`. Keys: seed, drop, delay, delay-ms,
  /// corrupt. Empty spec = inactive plan. Throws std::invalid_argument on
  /// unknown keys or malformed values.
  static ServeFaultPlan parse(const std::string& spec);

  /// Compact human-readable summary of the active processes.
  std::string describe() const;
};

}  // namespace solsched::fault
