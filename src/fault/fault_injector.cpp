#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace solsched::fault {

FaultInjector::FaultInjector(const FaultPlan& plan,
                             const solar::TimeGrid& grid)
    : plan_(plan), grid_(grid) {
  // One independent child stream per process, split in a fixed order so
  // enabling one process never reshuffles another's schedule.
  util::Rng base(plan_.seed);
  util::Rng blackout_rng = base.split();
  util::Rng sensor_rng = base.split();
  util::Rng controller_rng = base.split();
  util::Rng aging_rng = base.split();

  const std::size_t total_slots = grid_.total_slots();
  const std::size_t total_periods = grid_.total_periods();

  if (plan_.blackout.rate_per_day > 0.0 && total_slots > 0) {
    blackout_.assign(total_slots, 0);
    const double p_start = std::min(
        1.0, plan_.blackout.rate_per_day /
                 static_cast<double>(grid_.slots_per_day()));
    const double extra_mean = std::max(0.0, plan_.blackout.mean_slots - 1.0);
    std::size_t remaining = 0;
    for (std::size_t flat = 0; flat < total_slots; ++flat) {
      if (remaining == 0 && blackout_rng.bernoulli(p_start)) {
        // Geometric-ish duration: 1 slot plus an exponential tail with the
        // configured mean, sampled once at event start.
        const double u = blackout_rng.uniform();
        remaining = 1 + static_cast<std::size_t>(
                            std::floor(-extra_mean * std::log(1.0 - u)));
      }
      if (remaining > 0) {
        blackout_[flat] = 1;
        ++blackout_slots_;
        --remaining;
      }
    }
    // Count distinct dark runs in the finished table rather than sampled
    // starts: two draws landing back to back are one physical outage, and
    // this is the event count the simulator observes.
    for (std::size_t flat = 0; flat < total_slots; ++flat)
      if (blackout_[flat] && (flat == 0 || !blackout_[flat - 1]))
        ++blackout_events_;
  }

  if ((plan_.sensor.dropout_prob > 0.0 || plan_.sensor.glitch_prob > 0.0) &&
      total_slots > 0) {
    gain_.assign(total_slots, 1.0);
    const double p_drop = plan_.sensor.dropout_prob;
    const double p_glitch = plan_.sensor.glitch_prob;
    for (std::size_t flat = 0; flat < total_slots; ++flat) {
      const double u = sensor_rng.uniform();
      if (u < p_drop)
        gain_[flat] = 0.0;
      else if (u < p_drop + p_glitch)
        gain_[flat] = plan_.sensor.glitch_gain;
    }
  }

  if (plan_.controller.corrupt_prob > 0.0 && total_periods > 0) {
    controller_.assign(total_periods, 0);
    for (std::size_t p = 0; p < total_periods; ++p) {
      if (!controller_rng.bernoulli(plan_.controller.corrupt_prob)) continue;
      controller_[p] = static_cast<std::uint8_t>(
          controller_rng.uniform_int(1, 4));  // The four ControllerFaults.
      ++corrupted_periods_;
    }
  }

  if (plan_.aging.dead_cap_prob > 0.0 && total_periods > 0 &&
      aging_rng.bernoulli(plan_.aging.dead_cap_prob)) {
    dead_period_ = static_cast<std::size_t>(aging_rng.uniform_int(
        0, static_cast<int>(total_periods > 1 ? total_periods - 1 : 0)));
    dead_ordinal_ = static_cast<std::size_t>(aging_rng.next_u64() >> 1);
  }
}

double FaultInjector::capacity_factor(std::size_t day) const noexcept {
  const double fade = plan_.aging.capacity_fade_per_day;
  if (fade <= 0.0) return 1.0;
  return std::pow(1.0 - std::min(fade, 0.99), static_cast<double>(day));
}

double FaultInjector::leakage_factor(std::size_t day) const noexcept {
  const double growth = plan_.aging.leakage_growth_per_day;
  if (growth <= 0.0) return 1.0;
  return std::pow(1.0 + growth, static_cast<double>(day));
}

}  // namespace solsched::fault
