// Declarative description of the fault processes injected into a run.
//
// A FaultPlan is pure configuration: seeded rates and magnitudes for the
// faults a deployed solar node actually sees. It is cheap to copy, scalable
// by a single intensity knob (the resilience sweep's x axis), and parseable
// from a compact `key=value,...` spec so examples can take a --fault-plan
// flag. Turning a plan into concrete per-slot/per-period schedules is the
// FaultInjector's job; everything here stays independent of the time grid.
//
// Processes (DESIGN.md §11):
//   * blackout    — supply interruptions (power failures): the node loses
//                   both harvest and storage access for a run of slots;
//   * sensor      — corruption of the *measured* solar trace (dropouts read
//                   zero, glitches read a scaled value) while the physical
//                   harvest is unaffected;
//   * aging       — capacitor degradation: capacitance fade and leakage
//                   growth per day, plus a possible stuck-dead capacitor;
//   * controller  — corruption of the decoded DBN output (NaN, out-of-range
//                   alpha, empty te, out-of-range capacitor index).
#pragma once

#include <cstdint>
#include <string>

namespace solsched::fault {

/// Supply-interruption process: blackout events start at a seeded
/// per-slot rate and last a geometric number of slots.
struct BlackoutConfig {
  double rate_per_day = 0.0;  ///< Expected blackout events per day.
  double mean_slots = 3.0;    ///< Mean event duration (>= 1 slot).
};

/// Measurement faults on the solar sensor. Probabilities are per slot and
/// mutually exclusive (dropout wins); the physical harvest is untouched.
struct SensorFaultConfig {
  double dropout_prob = 0.0;  ///< Sensor reads 0 W.
  double glitch_prob = 0.0;   ///< Sensor reads glitch_gain * true power.
  double glitch_gain = 4.0;   ///< Multiplier applied on glitch slots.
};

/// Capacitor degradation. Fade/growth compound per simulated day; the
/// stuck-dead event (at most one per run) permanently disables one
/// capacitor at a seeded period.
struct CapacitorAgingConfig {
  double capacity_fade_per_day = 0.0;   ///< Fractional C lost per day.
  double leakage_growth_per_day = 0.0;  ///< Fractional leakage gain per day.
  double dead_cap_prob = 0.0;           ///< P(one capacitor dies this run).
};

/// Controller-output corruption: with `corrupt_prob` per period the decoded
/// DBN output is replaced by one of the ControllerFault kinds.
struct ControllerFaultConfig {
  double corrupt_prob = 0.0;
};

/// The corruption applied to one period's decoded controller output.
enum class ControllerFault : std::uint8_t {
  kNone = 0,
  kNonFinite = 1,   ///< alpha becomes NaN.
  kAlphaRange = 2,  ///< alpha far outside [0, alpha_cap].
  kEmptyTe = 3,     ///< te clears to the empty task set.
  kCapRange = 4,    ///< Capacitor index beyond the bank.
};

/// Complete seeded fault scenario.
struct FaultPlan {
  std::uint64_t seed = 1;
  BlackoutConfig blackout{};
  SensorFaultConfig sensor{};
  CapacitorAgingConfig aging{};
  ControllerFaultConfig controller{};

  /// True when at least one process has a non-zero rate — an injector built
  /// from an inactive plan must leave simulation results bit-identical to
  /// running with no injector at all.
  bool any() const noexcept;

  /// Scales every stochastic rate by `intensity` (probabilities clamped to
  /// 1); seed and magnitudes (glitch gain, mean duration) are kept, so a
  /// sweep varies *how often* faults strike, not what they look like.
  FaultPlan scaled(double intensity) const;

  /// Parses a `key=value[,key=value...]` spec. Keys: seed, blackout
  /// (events/day), blackout-slots, dropout, glitch, glitch-gain, cap-fade,
  /// leak-growth, dead-cap, corrupt. Empty spec = inactive plan. Throws
  /// std::invalid_argument on unknown keys or malformed values.
  static FaultPlan parse(const std::string& spec);

  /// Compact human-readable summary of the active processes.
  std::string describe() const;
};

}  // namespace solsched::fault
