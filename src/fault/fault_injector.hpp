// Deterministic realization of a FaultPlan over one time grid.
//
// All randomness is consumed at construction: the injector expands the
// plan's processes into per-slot / per-period schedules with independent
// seeded streams (one util::Rng::split per process, in a fixed order), then
// answers queries from immutable tables. Two consequences the test suite
// pins down:
//   * the same (plan, grid) pair always yields the same schedules, on any
//     platform and at any thread count;
//   * a const injector is safely shared across concurrently simulated
//     policy rows (reads only), which is how core::run_comparison and the
//     resilience sweep use it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "solar/time_grid.hpp"

namespace solsched::fault {

/// Read-only fault schedule queried by nvp::simulate and the schedulers.
class FaultInjector {
 public:
  /// Expands `plan` over `grid`. The grid must match the simulated trace's
  /// grid exactly (nvp::simulate enforces this).
  FaultInjector(const FaultPlan& plan, const solar::TimeGrid& grid);

  const FaultPlan& plan() const noexcept { return plan_; }
  const solar::TimeGrid& grid() const noexcept { return grid_; }

  /// True when any process is active; an inactive injector behaves exactly
  /// like a null one.
  bool active() const noexcept { return plan_.any(); }

  /// True while a supply interruption covers the flattened slot.
  bool blackout(std::size_t flat_slot) const noexcept {
    return flat_slot < blackout_.size() && blackout_[flat_slot] != 0;
  }

  /// The solar power the *sensor* reports for this slot (the PMU keeps
  /// harvesting `physical_w`): 0 on dropout, gain * physical on glitch.
  double measured_solar_w(std::size_t flat_slot,
                          double physical_w) const noexcept {
    if (flat_slot >= gain_.size()) return physical_w;
    return gain_[flat_slot] * physical_w;
  }

  /// Corruption applied to the decoded controller output of this period.
  ControllerFault controller_fault(std::size_t flat_period) const noexcept {
    if (flat_period >= controller_.size()) return ControllerFault::kNone;
    return static_cast<ControllerFault>(controller_[flat_period]);
  }

  bool has_aging() const noexcept {
    return plan_.aging.capacity_fade_per_day > 0.0 ||
           plan_.aging.leakage_growth_per_day > 0.0;
  }

  /// Remaining capacitance fraction at the start of `day` (compounded).
  double capacity_factor(std::size_t day) const noexcept;

  /// Leakage multiplier at the start of `day` (compounded, >= 1).
  double leakage_factor(std::size_t day) const noexcept;

  /// If the stuck-dead event fires at this flattened period, the ordinal of
  /// the victim capacitor (the caller maps it modulo its bank size).
  std::optional<std::size_t> cap_killed_at(
      std::size_t flat_period) const noexcept {
    if (dead_period_ && *dead_period_ == flat_period) return dead_ordinal_;
    return std::nullopt;
  }

  // -- schedule statistics (for reports and tests) --------------------------
  std::size_t blackout_slots() const noexcept { return blackout_slots_; }
  std::size_t blackout_events() const noexcept { return blackout_events_; }
  std::size_t corrupted_periods() const noexcept { return corrupted_periods_; }

 private:
  FaultPlan plan_;
  solar::TimeGrid grid_;
  std::vector<std::uint8_t> blackout_;    ///< Per flat slot; empty when off.
  std::vector<double> gain_;              ///< Measured gain; empty when off.
  std::vector<std::uint8_t> controller_;  ///< Per flat period; empty when off.
  std::optional<std::size_t> dead_period_;
  std::size_t dead_ordinal_ = 0;
  std::size_t blackout_slots_ = 0;
  std::size_t blackout_events_ = 0;
  std::size_t corrupted_periods_ = 0;
};

}  // namespace solsched::fault
