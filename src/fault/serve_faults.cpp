#include "fault/serve_faults.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace solsched::fault {
namespace {

double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

double parse_value(const std::string& key, const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("ServeFaultPlan::parse: bad value for " + key);
  }
  if (used != text.size() || !std::isfinite(value) || value < 0.0)
    throw std::invalid_argument("ServeFaultPlan::parse: bad value for " + key);
  return value;
}

}  // namespace

bool ServeFaultPlan::any() const noexcept {
  return drop_prob > 0.0 || delay_prob > 0.0 || corrupt_prob > 0.0;
}

ServeFault ServeFaultPlan::decide(std::uint64_t ordinal) const noexcept {
  if (!any()) return ServeFault::kNone;
  // A fresh per-ordinal stream keeps decisions independent of how many
  // replies other connections have sent: reply N misbehaves identically
  // whether the drill ran with 1 client or 16.
  util::Rng rng(seed ^ (0x5345525645ull + ordinal * 0x9E3779B97F4A7C15ull));
  const double roll = rng.uniform();
  if (roll < drop_prob) return ServeFault::kDrop;
  if (roll < drop_prob + corrupt_prob) return ServeFault::kCorrupt;
  if (roll < drop_prob + corrupt_prob + delay_prob) return ServeFault::kDelay;
  return ServeFault::kNone;
}

ServeFaultPlan ServeFaultPlan::parse(const std::string& spec) {
  ServeFaultPlan plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument(
          "ServeFaultPlan::parse: expected key=value, got " + item);
    const std::string key = item.substr(0, eq);
    const std::string text = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_value(key, text));
    } else if (key == "drop") {
      plan.drop_prob = clamp01(parse_value(key, text));
    } else if (key == "delay") {
      plan.delay_prob = clamp01(parse_value(key, text));
    } else if (key == "delay-ms") {
      plan.delay_ms = static_cast<std::uint32_t>(parse_value(key, text));
    } else if (key == "corrupt") {
      plan.corrupt_prob = clamp01(parse_value(key, text));
    } else {
      throw std::invalid_argument("ServeFaultPlan::parse: unknown key " + key);
    }
  }
  return plan;
}

std::string ServeFaultPlan::describe() const {
  std::ostringstream out;
  out << "seed " << seed;
  if (drop_prob > 0.0) out << ", drop " << drop_prob;
  if (delay_prob > 0.0)
    out << ", delay " << delay_prob << " (" << delay_ms << " ms)";
  if (corrupt_prob > 0.0) out << ", corrupt " << corrupt_prob;
  if (!any()) out << ", inactive";
  return out.str();
}

}  // namespace solsched::fault
