// Per-dimension min-max normalization of ANN inputs/outputs into [0, 1].
#pragma once

#include <vector>

#include "ann/matrix.hpp"

namespace solsched::ann {

/// Fits per-dimension [min, max] on data and maps vectors into [0, 1]^d.
/// Dimensions with zero range map to 0.5.
class Normalizer {
 public:
  Normalizer() = default;

  /// Learns ranges from a data set (all vectors the same size).
  void fit(const std::vector<Vector>& data);

  /// Sets ranges explicitly (e.g. known physical bounds).
  void set_ranges(Vector mins, Vector maxs);

  /// Maps into [0, 1]^d, clamping outside values. Throws if not fitted or
  /// size mismatches.
  Vector transform(const Vector& x) const;

  /// Inverse map from [0, 1]^d back to original units.
  Vector inverse(const Vector& y) const;

  bool fitted() const noexcept { return !mins_.empty(); }
  std::size_t dims() const noexcept { return mins_.size(); }
  const Vector& mins() const noexcept { return mins_; }
  const Vector& maxs() const noexcept { return maxs_; }

 private:
  /// True when column i has no usable range (max <= min); transform and
  /// inverse share this test so degenerate columns round-trip exactly.
  bool degenerate(std::size_t i) const noexcept;

  Vector mins_;
  Vector maxs_;
};

}  // namespace solsched::ann
