// Dense row-major matrix kernels for the ANN stack.
//
// The networks here are tiny (tens of units), so clarity beats blocking
// tricks; everything is plain double loops with bounds asserted in debug.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace solsched::ann {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Gaussian-initialized matrix (mean 0, given stddev).
  static Matrix randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double stddev);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  /// y = W x  (x.size() == cols).
  Vector multiply(const Vector& x) const;

  /// y = W x written into a caller-owned buffer (resized as needed) — the
  /// allocation-free variant the training inner loops use.
  void multiply_into(const Vector& x, Vector& y) const;

  /// y = W^T x  (x.size() == rows).
  Vector multiply_transposed(const Vector& x) const;

  /// y = W^T x into a caller-owned buffer (resized as needed).
  void multiply_transposed_into(const Vector& x, Vector& y) const;

  /// W += scale * a b^T  (a.size() == rows, b.size() == cols).
  void add_outer(const Vector& a, const Vector& b, double scale);

  /// W += scale * other (same shape).
  void add_scaled(const Matrix& other, double scale);

  /// Scales all entries.
  void scale(double factor);

  /// Frobenius norm.
  double frobenius() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise logistic sigmoid.
double sigmoid(double x) noexcept;
/// In-place sigmoid over a vector.
void sigmoid_inplace(Vector& v) noexcept;
/// Derivative of sigmoid given its output value s: s (1 - s).
double sigmoid_deriv_from_output(double s) noexcept;

/// v += w (same size).
void add_inplace(Vector& v, const Vector& w);
/// Mean squared error between two equal-size vectors.
double mse(const Vector& a, const Vector& b);

/// Fused SGD-with-momentum step over one weight matrix:
///   vel = momentum * vel + coeff * (a b^T + decay * w);  w += vel.
/// One pass over w/vel instead of the scale + add_outer + add_scaled
/// sequence (which walks the matrix four times and allocates a gradient).
void momentum_update(Matrix& w, Matrix& vel, const Vector& a, const Vector& b,
                     double momentum, double coeff, double decay);

/// Same with the contrastive-divergence two-term gradient:
///   vel = momentum * vel + coeff * (a1 b1^T - a2 b2^T + decay * w);
///   w += vel.
void momentum_update2(Matrix& w, Matrix& vel, const Vector& a1,
                      const Vector& b1, const Vector& a2, const Vector& b2,
                      double momentum, double coeff, double decay);

}  // namespace solsched::ann
