#include "ann/mlp.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ann/kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace solsched::ann {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed)
    : sizes_(std::move(layer_sizes)), rng_(seed) {
  if (sizes_.size() < 2)
    throw std::invalid_argument("Mlp: need at least input and output layers");
  for (std::size_t s : sizes_)
    if (s == 0) throw std::invalid_argument("Mlp: zero-size layer");
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    // Xavier-ish scale keeps sigmoid activations in their linear region.
    const double stddev = 1.0 / std::sqrt(static_cast<double>(sizes_[l]));
    weights_.push_back(Matrix::randn(sizes_[l + 1], sizes_[l], rng_, stddev));
    biases_.emplace_back(sizes_[l + 1], 0.0);
    vel_w_.emplace_back(sizes_[l + 1], sizes_[l]);
    vel_b_.emplace_back(sizes_[l + 1], 0.0);
  }
}

Vector Mlp::forward(const Vector& x) const {
  if (x.size() != n_inputs())
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  Vector a = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    a = weights_[l].multiply(a);
    add_inplace(a, biases_[l]);
    sigmoid_inplace(a);
  }
  return a;
}

kernels::BatchMatrix Mlp::forward_batch(const kernels::BatchMatrix& x) const {
  if (x.cols() != n_inputs())
    throw std::invalid_argument("Mlp::forward_batch: input size mismatch");
  OBS_SPAN("ann.gemm");
  const std::size_t n = x.rows();
  kernels::BatchMatrix cur = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    kernels::BatchMatrix next(n, w.rows());
    kernels::gemm_batch(w.data().data(), w.rows(), w.cols(), cur.data(), n,
                        cur.ld(), next.data(), next.ld());
    for (std::size_t s = 0; s < n; ++s) {
      double* row = next.row(s);
      kernels::add_n(row, biases_[l].data(), w.rows());
      kernels::sigmoid_n(row, w.rows());
    }
    cur = std::move(next);
  }
  OBS_COUNTER_ADD("ann.kernel.gemm_batch", weights_.size());
  return cur;
}

double Mlp::train_epoch(const std::vector<Sample>& samples,
                        const MlpTrainConfig& config) {
  if (samples.empty()) return 0.0;
  double loss_acc = 0.0;
  const auto order = rng_.permutation(samples.size());
  const std::size_t depth = weights_.size();

  if (config.batch_size > 1)
    return train_epoch_minibatch(samples, config, order);

  if (config.fused_kernels) {
    // Activation/delta buffers live across the whole epoch; the weight
    // step is one fused pass (momentum_update) instead of the four-pass
    // scale/add_outer/add_scaled sequence.
    std::vector<Vector> acts(depth + 1);
    Vector delta;
    Vector next_delta;
    for (std::size_t idx : order) {
      const Sample& sample = samples[idx];
      if (sample.x.size() != n_inputs() || sample.y.size() != n_outputs())
        throw std::invalid_argument("Mlp::train_epoch: sample size mismatch");

      acts[0] = sample.x;
      for (std::size_t l = 0; l < depth; ++l) {
        weights_[l].multiply_into(acts[l], acts[l + 1]);
        add_inplace(acts[l + 1], biases_[l]);
        sigmoid_inplace(acts[l + 1]);
      }
      loss_acc += mse(acts[depth], sample.y);

      delta.assign(n_outputs(), 0.0);
      for (std::size_t i = 0; i < delta.size(); ++i) {
        const double out = acts[depth][i];
        delta[i] = (out - sample.y[i]) * sigmoid_deriv_from_output(out);
      }

      for (std::size_t l = depth; l-- > 0;) {
        // Propagate before updating so we use the pre-update weights.
        if (l > 0) {
          weights_[l].multiply_transposed_into(delta, next_delta);
          kernels::sigmoid_deriv_mul_n(next_delta.data(), acts[l].data(),
                                       next_delta.size());
        }

        momentum_update(weights_[l], vel_w_[l], delta, acts[l],
                        config.momentum, -config.learning_rate,
                        config.weight_decay);

        kernels::bias_momentum_n(biases_[l].data(), vel_b_[l].data(),
                                 delta.data(), config.momentum,
                                 config.learning_rate, biases_[l].size());

        if (l > 0) std::swap(delta, next_delta);
      }
    }
    // Epoch-level kernel accounting (per-call counters would cost more
    // atomics than the kernels themselves on these layer sizes).
    OBS_COUNTER_ADD("ann.kernel.gemv", samples.size() * depth);
    OBS_COUNTER_ADD("ann.kernel.gemv_t",
                    samples.size() * (depth > 0 ? depth - 1 : 0));
    OBS_COUNTER_ADD("ann.kernel.sigmoid", samples.size() * depth);
    OBS_COUNTER_ADD("ann.kernel.momentum", samples.size() * depth);
    return loss_acc / static_cast<double>(samples.size());
  }

  for (std::size_t idx : order) {
    const Sample& sample = samples[idx];
    if (sample.x.size() != n_inputs() || sample.y.size() != n_outputs())
      throw std::invalid_argument("Mlp::train_epoch: sample size mismatch");

    // Forward pass keeping activations per layer.
    std::vector<Vector> acts;
    acts.reserve(depth + 1);
    acts.push_back(sample.x);
    for (std::size_t l = 0; l < depth; ++l) {
      Vector a = weights_[l].multiply(acts.back());
      add_inplace(a, biases_[l]);
      sigmoid_inplace(a);
      acts.push_back(std::move(a));
    }
    loss_acc += mse(acts.back(), sample.y);

    // Backward pass: delta = dLoss/dz per layer (MSE + sigmoid).
    Vector delta(n_outputs());
    for (std::size_t i = 0; i < delta.size(); ++i) {
      const double out = acts.back()[i];
      delta[i] = (out - sample.y[i]) * sigmoid_deriv_from_output(out);
    }

    for (std::size_t l = depth; l-- > 0;) {
      // Gradients for layer l: dW = delta * acts[l]^T, db = delta.
      // Propagate before updating so we use the pre-update weights.
      Vector next_delta;
      if (l > 0) {
        next_delta = weights_[l].multiply_transposed(delta);
        for (std::size_t i = 0; i < next_delta.size(); ++i)
          next_delta[i] *= sigmoid_deriv_from_output(acts[l][i]);
      }

      vel_w_[l].scale(config.momentum);
      Matrix grad(weights_[l].rows(), weights_[l].cols());
      grad.add_outer(delta, acts[l], 1.0);
      grad.add_scaled(weights_[l], config.weight_decay);
      vel_w_[l].add_scaled(grad, -config.learning_rate);
      weights_[l].add_scaled(vel_w_[l], 1.0);

      for (std::size_t i = 0; i < biases_[l].size(); ++i) {
        vel_b_[l][i] = config.momentum * vel_b_[l][i] -
                       config.learning_rate * delta[i];
        biases_[l][i] += vel_b_[l][i];
      }

      if (l > 0) delta = std::move(next_delta);
    }
  }
  return loss_acc / static_cast<double>(samples.size());
}

double Mlp::train_epoch_minibatch(const std::vector<Sample>& samples,
                                  const MlpTrainConfig& config,
                                  const std::vector<std::size_t>& order) {
  // Minibatch SGD: the shuffled epoch is cut into chunks of batch_size
  // (ragged tail included); each chunk runs a batched forward pass, the
  // per-sample deltas are back-propagated against the same frozen weights,
  // and the *averaged* gradient is applied in one momentum step. All
  // arithmetic goes through the kernel layer, so scalar and SIMD builds
  // agree bit for bit; only the B=1 path is bit-comparable to the legacy
  // per-sample sequence.
  const std::size_t depth = weights_.size();
  double loss_acc = 0.0;

  std::vector<kernels::BatchMatrix> acts(depth + 1);
  std::vector<kernels::BatchMatrix> deltas(depth + 1);
  std::vector<Matrix> grads;
  Vector grad_b;
  for (std::size_t l = 0; l < depth; ++l)
    grads.emplace_back(weights_[l].rows(), weights_[l].cols());

  for (std::size_t start = 0; start < order.size();
       start += config.batch_size) {
    const std::size_t b =
        std::min(config.batch_size, order.size() - start);

    acts[0] = kernels::BatchMatrix(b, n_inputs());
    for (std::size_t s = 0; s < b; ++s) {
      const Sample& sample = samples[order[start + s]];
      if (sample.x.size() != n_inputs() || sample.y.size() != n_outputs())
        throw std::invalid_argument("Mlp::train_epoch: sample size mismatch");
      acts[0].set_row(s, sample.x);
    }

    // Batched forward, keeping every layer's activations.
    for (std::size_t l = 0; l < depth; ++l) {
      const Matrix& w = weights_[l];
      acts[l + 1] = kernels::BatchMatrix(b, w.rows());
      kernels::gemm_batch(w.data().data(), w.rows(), w.cols(), acts[l].data(),
                          b, acts[l].ld(), acts[l + 1].data(),
                          acts[l + 1].ld());
      for (std::size_t s = 0; s < b; ++s) {
        double* row = acts[l + 1].row(s);
        kernels::add_n(row, biases_[l].data(), w.rows());
        kernels::sigmoid_n(row, w.rows());
      }
    }

    // Output deltas: (out - y) * s(1-s), per sample.
    deltas[depth] = kernels::BatchMatrix(b, n_outputs());
    for (std::size_t s = 0; s < b; ++s) {
      const Sample& sample = samples[order[start + s]];
      const double* out = acts[depth].row(s);
      double* d = deltas[depth].row(s);
      double err = 0.0;
      for (std::size_t i = 0; i < n_outputs(); ++i) {
        const double diff = out[i] - sample.y[i];
        err += diff * diff;
        d[i] = diff * sigmoid_deriv_from_output(out[i]);
      }
      loss_acc += err / static_cast<double>(n_outputs());
    }

    // Backward through the frozen weights, then one averaged update per
    // layer. Gradients accumulate in sample order (s outer), so the result
    // is independent of build flavor and thread count.
    const double inv_b = 1.0 / static_cast<double>(b);
    for (std::size_t l = depth; l-- > 0;) {
      if (l > 0) {
        deltas[l] = kernels::BatchMatrix(b, weights_[l].cols());
        for (std::size_t s = 0; s < b; ++s) {
          double* nd = deltas[l].row(s);
          kernels::gemv_t_acc(weights_[l].data().data(), weights_[l].rows(),
                              weights_[l].cols(), deltas[l + 1].row(s), nd);
          kernels::sigmoid_deriv_mul_n(nd, acts[l].row(s),
                                       weights_[l].cols());
        }
      }

      Matrix& grad = grads[l];
      grad.scale(0.0);
      for (std::size_t s = 0; s < b; ++s)
        kernels::outer_acc_n(grad.data().data(), deltas[l + 1].row(s),
                             acts[l].row(s), 1.0, grad.rows(), grad.cols());
      vel_w_[l].scale(config.momentum);
      vel_w_[l].add_scaled(grad, -config.learning_rate * inv_b);
      vel_w_[l].add_scaled(weights_[l], -config.learning_rate *
                                            config.weight_decay);
      weights_[l].add_scaled(vel_w_[l], 1.0);

      grad_b.assign(biases_[l].size(), 0.0);
      for (std::size_t s = 0; s < b; ++s)
        kernels::add_n(grad_b.data(), deltas[l + 1].row(s), grad_b.size());
      for (std::size_t i = 0; i < biases_[l].size(); ++i) {
        vel_b_[l][i] = config.momentum * vel_b_[l][i] -
                       config.learning_rate * inv_b * grad_b[i];
        biases_[l][i] += vel_b_[l][i];
      }
    }
  }
  OBS_COUNTER_ADD("ann.kernel.gemm_batch",
                  depth * ((order.size() + config.batch_size - 1) /
                           config.batch_size));
  return loss_acc / static_cast<double>(samples.size());
}

double Mlp::train(const std::vector<Sample>& samples,
                  const MlpTrainConfig& config) {
  double loss = 0.0;
  for (std::size_t e = 0; e < config.epochs; ++e)
    loss = train_epoch(samples, config);
  return loss;
}

double Mlp::evaluate(const std::vector<Sample>& samples) const {
  if (samples.empty()) return 0.0;
  // Samples are independent under a const net: per-index error slots in
  // parallel, then a serial sum in sample order (deterministic at any
  // thread count).
  std::vector<double> errs(samples.size());
  util::parallel_for(samples.size(), [&](std::size_t i) {
    errs[i] = mse(forward(samples[i].x), samples[i].y);
  });
  double acc = 0.0;
  for (double e : errs) acc += e;
  return acc / static_cast<double>(samples.size());
}

void Mlp::set_layer(std::size_t layer, const Matrix& weights,
                    const Vector& bias) {
  if (layer >= weights_.size())
    throw std::out_of_range("Mlp::set_layer: layer out of range");
  if (weights.rows() != weights_[layer].rows() ||
      weights.cols() != weights_[layer].cols() ||
      bias.size() != biases_[layer].size())
    throw std::invalid_argument("Mlp::set_layer: shape mismatch");
  weights_[layer] = weights;
  biases_[layer] = bias;
}

std::string Mlp::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "mlp " << sizes_.size() << '\n';
  for (std::size_t s : sizes_) out << s << ' ';
  out << '\n';
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (double w : weights_[l].data()) out << w << ' ';
    out << '\n';
    for (double b : biases_[l]) out << b << ' ';
    out << '\n';
  }
  return out.str();
}

Mlp Mlp::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::size_t n_sizes = 0;
  if (!(in >> magic >> n_sizes) || magic != "mlp" || n_sizes < 2)
    throw std::invalid_argument("Mlp::deserialize: bad header");
  std::vector<std::size_t> sizes(n_sizes);
  for (auto& s : sizes)
    if (!(in >> s) || s == 0)
      throw std::invalid_argument("Mlp::deserialize: bad layer size");
  Mlp net(sizes, /*seed=*/0);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Matrix w(sizes[l + 1], sizes[l]);
    for (double& x : w.data())
      if (!(in >> x))
        throw std::invalid_argument("Mlp::deserialize: truncated weights");
    Vector b(sizes[l + 1]);
    for (double& x : b)
      if (!(in >> x))
        throw std::invalid_argument("Mlp::deserialize: truncated biases");
    net.set_layer(l, w, b);
  }
  return net;
}

}  // namespace solsched::ann
