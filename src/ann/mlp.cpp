#include "ann/mlp.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace solsched::ann {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed)
    : sizes_(std::move(layer_sizes)), rng_(seed) {
  if (sizes_.size() < 2)
    throw std::invalid_argument("Mlp: need at least input and output layers");
  for (std::size_t s : sizes_)
    if (s == 0) throw std::invalid_argument("Mlp: zero-size layer");
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    // Xavier-ish scale keeps sigmoid activations in their linear region.
    const double stddev = 1.0 / std::sqrt(static_cast<double>(sizes_[l]));
    weights_.push_back(Matrix::randn(sizes_[l + 1], sizes_[l], rng_, stddev));
    biases_.emplace_back(sizes_[l + 1], 0.0);
    vel_w_.emplace_back(sizes_[l + 1], sizes_[l]);
    vel_b_.emplace_back(sizes_[l + 1], 0.0);
  }
}

Vector Mlp::forward(const Vector& x) const {
  if (x.size() != n_inputs())
    throw std::invalid_argument("Mlp::forward: input size mismatch");
  Vector a = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    a = weights_[l].multiply(a);
    add_inplace(a, biases_[l]);
    sigmoid_inplace(a);
  }
  return a;
}

double Mlp::train_epoch(const std::vector<Sample>& samples,
                        const MlpTrainConfig& config) {
  if (samples.empty()) return 0.0;
  double loss_acc = 0.0;
  const auto order = rng_.permutation(samples.size());
  const std::size_t depth = weights_.size();

  if (config.fused_kernels) {
    // Activation/delta buffers live across the whole epoch; the weight
    // step is one fused pass (momentum_update) instead of the four-pass
    // scale/add_outer/add_scaled sequence.
    std::vector<Vector> acts(depth + 1);
    Vector delta;
    Vector next_delta;
    for (std::size_t idx : order) {
      const Sample& sample = samples[idx];
      if (sample.x.size() != n_inputs() || sample.y.size() != n_outputs())
        throw std::invalid_argument("Mlp::train_epoch: sample size mismatch");

      acts[0] = sample.x;
      for (std::size_t l = 0; l < depth; ++l) {
        weights_[l].multiply_into(acts[l], acts[l + 1]);
        add_inplace(acts[l + 1], biases_[l]);
        sigmoid_inplace(acts[l + 1]);
      }
      loss_acc += mse(acts[depth], sample.y);

      delta.assign(n_outputs(), 0.0);
      for (std::size_t i = 0; i < delta.size(); ++i) {
        const double out = acts[depth][i];
        delta[i] = (out - sample.y[i]) * sigmoid_deriv_from_output(out);
      }

      for (std::size_t l = depth; l-- > 0;) {
        // Propagate before updating so we use the pre-update weights.
        if (l > 0) {
          weights_[l].multiply_transposed_into(delta, next_delta);
          for (std::size_t i = 0; i < next_delta.size(); ++i)
            next_delta[i] *= sigmoid_deriv_from_output(acts[l][i]);
        }

        momentum_update(weights_[l], vel_w_[l], delta, acts[l],
                        config.momentum, -config.learning_rate,
                        config.weight_decay);

        for (std::size_t i = 0; i < biases_[l].size(); ++i) {
          vel_b_[l][i] = config.momentum * vel_b_[l][i] -
                         config.learning_rate * delta[i];
          biases_[l][i] += vel_b_[l][i];
        }

        if (l > 0) std::swap(delta, next_delta);
      }
    }
    return loss_acc / static_cast<double>(samples.size());
  }

  for (std::size_t idx : order) {
    const Sample& sample = samples[idx];
    if (sample.x.size() != n_inputs() || sample.y.size() != n_outputs())
      throw std::invalid_argument("Mlp::train_epoch: sample size mismatch");

    // Forward pass keeping activations per layer.
    std::vector<Vector> acts;
    acts.reserve(depth + 1);
    acts.push_back(sample.x);
    for (std::size_t l = 0; l < depth; ++l) {
      Vector a = weights_[l].multiply(acts.back());
      add_inplace(a, biases_[l]);
      sigmoid_inplace(a);
      acts.push_back(std::move(a));
    }
    loss_acc += mse(acts.back(), sample.y);

    // Backward pass: delta = dLoss/dz per layer (MSE + sigmoid).
    Vector delta(n_outputs());
    for (std::size_t i = 0; i < delta.size(); ++i) {
      const double out = acts.back()[i];
      delta[i] = (out - sample.y[i]) * sigmoid_deriv_from_output(out);
    }

    for (std::size_t l = depth; l-- > 0;) {
      // Gradients for layer l: dW = delta * acts[l]^T, db = delta.
      // Propagate before updating so we use the pre-update weights.
      Vector next_delta;
      if (l > 0) {
        next_delta = weights_[l].multiply_transposed(delta);
        for (std::size_t i = 0; i < next_delta.size(); ++i)
          next_delta[i] *= sigmoid_deriv_from_output(acts[l][i]);
      }

      vel_w_[l].scale(config.momentum);
      Matrix grad(weights_[l].rows(), weights_[l].cols());
      grad.add_outer(delta, acts[l], 1.0);
      grad.add_scaled(weights_[l], config.weight_decay);
      vel_w_[l].add_scaled(grad, -config.learning_rate);
      weights_[l].add_scaled(vel_w_[l], 1.0);

      for (std::size_t i = 0; i < biases_[l].size(); ++i) {
        vel_b_[l][i] = config.momentum * vel_b_[l][i] -
                       config.learning_rate * delta[i];
        biases_[l][i] += vel_b_[l][i];
      }

      if (l > 0) delta = std::move(next_delta);
    }
  }
  return loss_acc / static_cast<double>(samples.size());
}

double Mlp::train(const std::vector<Sample>& samples,
                  const MlpTrainConfig& config) {
  double loss = 0.0;
  for (std::size_t e = 0; e < config.epochs; ++e)
    loss = train_epoch(samples, config);
  return loss;
}

double Mlp::evaluate(const std::vector<Sample>& samples) const {
  if (samples.empty()) return 0.0;
  // Samples are independent under a const net: per-index error slots in
  // parallel, then a serial sum in sample order (deterministic at any
  // thread count).
  std::vector<double> errs(samples.size());
  util::parallel_for(samples.size(), [&](std::size_t i) {
    errs[i] = mse(forward(samples[i].x), samples[i].y);
  });
  double acc = 0.0;
  for (double e : errs) acc += e;
  return acc / static_cast<double>(samples.size());
}

void Mlp::set_layer(std::size_t layer, const Matrix& weights,
                    const Vector& bias) {
  if (layer >= weights_.size())
    throw std::out_of_range("Mlp::set_layer: layer out of range");
  if (weights.rows() != weights_[layer].rows() ||
      weights.cols() != weights_[layer].cols() ||
      bias.size() != biases_[layer].size())
    throw std::invalid_argument("Mlp::set_layer: shape mismatch");
  weights_[layer] = weights;
  biases_[layer] = bias;
}

std::string Mlp::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "mlp " << sizes_.size() << '\n';
  for (std::size_t s : sizes_) out << s << ' ';
  out << '\n';
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (double w : weights_[l].data()) out << w << ' ';
    out << '\n';
    for (double b : biases_[l]) out << b << ' ';
    out << '\n';
  }
  return out.str();
}

Mlp Mlp::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::size_t n_sizes = 0;
  if (!(in >> magic >> n_sizes) || magic != "mlp" || n_sizes < 2)
    throw std::invalid_argument("Mlp::deserialize: bad header");
  std::vector<std::size_t> sizes(n_sizes);
  for (auto& s : sizes)
    if (!(in >> s) || s == 0)
      throw std::invalid_argument("Mlp::deserialize: bad layer size");
  Mlp net(sizes, /*seed=*/0);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Matrix w(sizes[l + 1], sizes[l]);
    for (double& x : w.data())
      if (!(in >> x))
        throw std::invalid_argument("Mlp::deserialize: truncated weights");
    Vector b(sizes[l + 1]);
    for (double& x : b)
      if (!(in >> x))
        throw std::invalid_argument("Mlp::deserialize: truncated biases");
    net.set_layer(l, w, b);
  }
  return net;
}

}  // namespace solsched::ann
