// Deep belief network (paper Fig. 6).
//
// Hidden layers are pretrained greedily as a stack of RBMs on the inputs
// (unsupervised); the stack then initializes an MLP whose final layer (the
// paper's "visible layer" / BP network) is trained supervised by
// back-propagation through the whole net. Deterministic for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "ann/mlp.hpp"
#include "ann/rbm.hpp"

namespace solsched::ann {

/// DBN hyper-parameters.
struct DbnConfig {
  std::vector<std::size_t> hidden_sizes = {24, 12};
  RbmTrainConfig pretrain{};
  MlpTrainConfig finetune{};
  std::uint64_t seed = 1234;
};

/// Training diagnostics.
struct DbnTrainReport {
  std::vector<double> rbm_reconstruction_mse;  ///< One per hidden layer.
  double finetune_loss = 0.0;                  ///< Final epoch MSE.
};

/// Pretrained + fine-tuned network.
class Dbn {
 public:
  /// Builds the layer stack for the given input/output widths.
  Dbn(std::size_t n_inputs, std::size_t n_outputs, DbnConfig config = {});

  /// Wraps an already-trained network (deserialization path); the returned
  /// DBN is inference-only in spirit (train() would retrain from the given
  /// weights).
  static Dbn from_network(Mlp network);

  /// Greedy RBM pretraining followed by supervised fine-tuning.
  DbnTrainReport train(const std::vector<Sample>& samples);

  /// Inference.
  Vector predict(const Vector& x) const { return net_.forward(x); }

  /// Batched inference: one GEMM-shaped forward pass over all inputs.
  /// Bit-exact with calling predict() on each element, just cheaper — the
  /// campaign runner probes controllers with this.
  std::vector<Vector> predict_batch(const std::vector<Vector>& xs) const;

  /// Mean MSE over a labelled set.
  double evaluate(const std::vector<Sample>& samples) const {
    return net_.evaluate(samples);
  }

  const Mlp& network() const noexcept { return net_; }
  std::size_t n_inputs() const noexcept { return net_.n_inputs(); }
  std::size_t n_outputs() const noexcept { return net_.n_outputs(); }

 private:
  DbnConfig config_;
  Mlp net_;
};

}  // namespace solsched::ann
