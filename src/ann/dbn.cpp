#include "ann/dbn.hpp"

#include <stdexcept>

#include "ann/kernels/kernels.hpp"
#include "util/thread_pool.hpp"

namespace solsched::ann {
namespace {

std::vector<std::size_t> full_sizes(std::size_t n_in, std::size_t n_out,
                                    const std::vector<std::size_t>& hidden) {
  std::vector<std::size_t> sizes;
  sizes.reserve(hidden.size() + 2);
  sizes.push_back(n_in);
  for (std::size_t h : hidden) sizes.push_back(h);
  sizes.push_back(n_out);
  return sizes;
}

}  // namespace

Dbn::Dbn(std::size_t n_inputs, std::size_t n_outputs, DbnConfig config)
    : config_(std::move(config)),
      net_(full_sizes(n_inputs, n_outputs, config_.hidden_sizes),
           config_.seed) {}

Dbn Dbn::from_network(Mlp network) {
  DbnConfig config;
  config.hidden_sizes.clear();
  Dbn dbn(network.n_inputs(), network.n_outputs(), config);
  dbn.net_ = std::move(network);
  return dbn;
}

std::vector<Vector> Dbn::predict_batch(const std::vector<Vector>& xs) const {
  const std::size_t n_in = net_.n_inputs();
  kernels::BatchMatrix in(xs.size(), n_in);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    if (xs[s].size() != n_in)
      throw std::invalid_argument("Dbn::predict_batch: input size mismatch");
    in.set_row(s, xs[s]);
  }
  const kernels::BatchMatrix out = net_.forward_batch(in);
  std::vector<Vector> ys(xs.size());
  for (std::size_t s = 0; s < xs.size(); ++s)
    ys[s].assign(out.row(s), out.row(s) + out.cols());
  return ys;
}

DbnTrainReport Dbn::train(const std::vector<Sample>& samples) {
  if (samples.empty())
    throw std::invalid_argument("Dbn::train: empty sample set");

  DbnTrainReport report;

  // Greedy layer-wise RBM pretraining: each RBM learns to model the
  // activations of the layer below.
  std::vector<Vector> layer_data;
  layer_data.reserve(samples.size());
  for (const auto& s : samples) layer_data.push_back(s.x);

  std::size_t below = net_.n_inputs();
  for (std::size_t l = 0; l < config_.hidden_sizes.size(); ++l) {
    const std::size_t width = config_.hidden_sizes[l];
    Rbm rbm(below, width, config_.seed + 17 * (l + 1));
    rbm.train(layer_data, config_.pretrain);
    report.rbm_reconstruction_mse.push_back(
        rbm.reconstruction_mse(layer_data));

    // Inject the pretrained weights into the MLP layer.
    net_.set_layer(l, rbm.weights(), rbm.hidden_bias());

    // Propagate the data one layer up for the next RBM. Samples are
    // independent under the frozen RBM: per-index slots, any thread count.
    std::vector<Vector> next(layer_data.size());
    util::parallel_for(layer_data.size(), [&](std::size_t i) {
      next[i] = rbm.hidden_probs(layer_data[i]);
    });
    layer_data = std::move(next);
    below = width;
  }

  // Supervised fine-tuning of the whole stack (BP network on top).
  report.finetune_loss = net_.train(samples, config_.finetune);
  return report;
}

}  // namespace solsched::ann
