// Multi-layer perceptron with back-propagation (the DBN's "BP network").
//
// All units are logistic sigmoid — including the outputs, since every
// target (capacitor choice one-hot, α index, te bits) is normalized into
// [0, 1]. Training is per-sample SGD with momentum, deterministic for a
// given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ann/kernels/kernels.hpp"
#include "ann/matrix.hpp"
#include "util/rng.hpp"

namespace solsched::ann {

/// One labelled training sample.
struct Sample {
  Vector x;
  Vector y;
};

/// Back-propagation hyper-parameters.
struct MlpTrainConfig {
  std::size_t epochs = 200;
  double learning_rate = 0.2;
  double momentum = 0.7;
  double weight_decay = 1e-5;
  /// Fused momentum step + reused activation buffers. Same update rule as
  /// the legacy path but with a different floating-point evaluation order;
  /// set false to reproduce the original sequence bit-for-bit.
  bool fused_kernels = true;
  /// Samples per weight update. 1 (default) reproduces the per-sample SGD
  /// sequence bit-for-bit. >1 switches to minibatch SGD: forward/backward
  /// run as batch GEMM passes and the averaged gradient is applied once per
  /// batch — a *different training algorithm* (deterministic and identical
  /// across scalar/SIMD builds, but its loss is only tolerance-comparable
  /// to batch_size=1; runs stamp the batch size into their manifests).
  std::size_t batch_size = 1;
};

/// Fully connected feed-forward network.
class Mlp {
 public:
  /// layer_sizes = {inputs, hidden..., outputs}; at least 2 entries.
  Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed);

  std::size_t n_inputs() const noexcept { return sizes_.front(); }
  std::size_t n_outputs() const noexcept { return sizes_.back(); }
  std::size_t n_layers() const noexcept { return weights_.size(); }

  /// Forward pass.
  Vector forward(const Vector& x) const;

  /// Batched forward pass over a padded sample panel (one sample per row).
  /// Bit-exact with calling forward() on each row: the batched GEMM keeps
  /// every sample's per-output accumulation order.
  kernels::BatchMatrix forward_batch(const kernels::BatchMatrix& x) const;

  /// One SGD epoch over the samples (shuffled); returns mean MSE loss.
  double train_epoch(const std::vector<Sample>& samples,
                     const MlpTrainConfig& config);

  /// Runs config.epochs epochs; returns the final epoch's loss.
  double train(const std::vector<Sample>& samples,
               const MlpTrainConfig& config);

  /// Mean MSE over a sample set.
  double evaluate(const std::vector<Sample>& samples) const;

  /// Injects pretrained weights into layer `layer` (0-based from input).
  /// Shapes must match the construction sizes.
  void set_layer(std::size_t layer, const Matrix& weights, const Vector& bias);

  const Matrix& layer_weights(std::size_t layer) const {
    return weights_.at(layer);
  }
  const Vector& layer_bias(std::size_t layer) const { return biases_.at(layer); }

  /// Text round-trip (weights + shape); parse errors throw.
  std::string serialize() const;
  static Mlp deserialize(const std::string& text);

 private:
  double train_epoch_minibatch(const std::vector<Sample>& samples,
                               const MlpTrainConfig& config,
                               const std::vector<std::size_t>& order);

  std::vector<std::size_t> sizes_;
  std::vector<Matrix> weights_;  ///< weights_[l]: sizes_[l+1] x sizes_[l].
  std::vector<Vector> biases_;
  std::vector<Matrix> vel_w_;
  std::vector<Vector> vel_b_;
  util::Rng rng_;
};

}  // namespace solsched::ann
