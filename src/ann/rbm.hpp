// Restricted Boltzmann machine with contrastive divergence (CD-1).
//
// The paper's DBN (Fig. 6) pretrains its hidden layers as RBMs by
// unsupervised learning before supervised fine-tuning. Inputs are
// continuous in [0, 1] (normalized solar powers, voltages, DMR) and are
// treated as Bernoulli probabilities, the standard practice for
// unit-interval data.
#pragma once

#include <cstdint>
#include <vector>

#include "ann/matrix.hpp"
#include "util/rng.hpp"

namespace solsched::ann {

/// Training hyper-parameters for CD-1.
struct RbmTrainConfig {
  std::size_t epochs = 30;
  double learning_rate = 0.1;
  double momentum = 0.5;
  double weight_decay = 1e-4;
  bool sample_hidden = true;  ///< Stochastic hidden states in the positive phase.
  /// Fused CD-1 momentum step + reused phase buffers. Same update rule as
  /// the legacy path but with a different floating-point evaluation order;
  /// set false to reproduce the original sequence bit-for-bit.
  bool fused_kernels = true;
  /// Samples per CD-1 weight update. 1 (default) reproduces the per-sample
  /// sequence bit-for-bit. >1 runs the Gibbs phases as batch GEMM passes
  /// and applies the averaged CD statistics once per batch; hidden-state
  /// Bernoulli draws consume the RNG in (sample, unit) order — the same
  /// stream order as batch_size=1. Deterministic and build-independent,
  /// but a different training algorithm than per-sample updates.
  std::size_t batch_size = 1;
};

/// Bernoulli-Bernoulli RBM.
class Rbm {
 public:
  Rbm(std::size_t n_visible, std::size_t n_hidden, std::uint64_t seed);

  std::size_t n_visible() const noexcept { return weights_.cols(); }
  std::size_t n_hidden() const noexcept { return weights_.rows(); }

  /// P(h = 1 | v).
  Vector hidden_probs(const Vector& visible) const;
  /// P(v = 1 | h).
  Vector visible_probs(const Vector& hidden) const;

  /// One CD-1 epoch over the data set; returns mean reconstruction MSE.
  double train_epoch(const std::vector<Vector>& data,
                     const RbmTrainConfig& config);

  /// Runs config.epochs epochs; returns the final reconstruction MSE.
  double train(const std::vector<Vector>& data, const RbmTrainConfig& config);

  /// Mean reconstruction error of the data under the current weights.
  double reconstruction_mse(const std::vector<Vector>& data) const;

  /// Weight matrix (hidden x visible) — consumed by DBN stacking.
  const Matrix& weights() const noexcept { return weights_; }
  const Vector& hidden_bias() const noexcept { return hidden_bias_; }
  const Vector& visible_bias() const noexcept { return visible_bias_; }

 private:
  Vector sample_bernoulli(const Vector& probs);
  double train_epoch_minibatch(const std::vector<Vector>& data,
                               const RbmTrainConfig& config,
                               const std::vector<std::size_t>& order);

  Matrix weights_;  ///< hidden x visible.
  Vector hidden_bias_;
  Vector visible_bias_;
  Matrix momentum_w_;
  Vector momentum_h_;
  Vector momentum_v_;
  util::Rng rng_;
};

}  // namespace solsched::ann
