#include "ann/rbm.hpp"

#include <algorithm>
#include <stdexcept>

#include "ann/kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace solsched::ann {

Rbm::Rbm(std::size_t n_visible, std::size_t n_hidden, std::uint64_t seed)
    : rng_(seed) {
  if (n_visible == 0 || n_hidden == 0)
    throw std::invalid_argument("Rbm: layer sizes must be positive");
  weights_ = Matrix::randn(n_hidden, n_visible, rng_, 0.1);
  hidden_bias_.assign(n_hidden, 0.0);
  visible_bias_.assign(n_visible, 0.0);
  momentum_w_ = Matrix(n_hidden, n_visible);
  momentum_h_.assign(n_hidden, 0.0);
  momentum_v_.assign(n_visible, 0.0);
}

Vector Rbm::hidden_probs(const Vector& visible) const {
  Vector h = weights_.multiply(visible);
  add_inplace(h, hidden_bias_);
  sigmoid_inplace(h);
  return h;
}

Vector Rbm::visible_probs(const Vector& hidden) const {
  Vector v = weights_.multiply_transposed(hidden);
  add_inplace(v, visible_bias_);
  sigmoid_inplace(v);
  return v;
}

Vector Rbm::sample_bernoulli(const Vector& probs) {
  Vector s(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    s[i] = rng_.bernoulli(probs[i]) ? 1.0 : 0.0;
  return s;
}

double Rbm::train_epoch(const std::vector<Vector>& data,
                        const RbmTrainConfig& config) {
  if (data.empty()) return 0.0;
  double err_acc = 0.0;
  const auto order = rng_.permutation(data.size());

  if (config.batch_size > 1)
    return train_epoch_minibatch(data, config, order);

  if (config.fused_kernels) {
    // Phase buffers live across the epoch; the CD-1 weight step is one
    // fused pass (momentum_update2) instead of building an explicit
    // gradient matrix per sample. RNG consumption matches the legacy path
    // exactly (one permutation + one Bernoulli draw per hidden unit).
    Vector h0_probs;
    Vector h0;
    Vector v1;
    Vector h1_probs;
    for (std::size_t idx : order) {
      const Vector& v0 = data[idx];
      if (v0.size() != n_visible())
        throw std::invalid_argument("Rbm::train_epoch: sample size mismatch");

      // Positive phase.
      weights_.multiply_into(v0, h0_probs);
      add_inplace(h0_probs, hidden_bias_);
      sigmoid_inplace(h0_probs);
      if (config.sample_hidden) {
        h0.assign(h0_probs.size(), 0.0);
        for (std::size_t i = 0; i < h0_probs.size(); ++i)
          h0[i] = rng_.bernoulli(h0_probs[i]) ? 1.0 : 0.0;
      }
      const Vector& h0_state = config.sample_hidden ? h0 : h0_probs;

      // Negative phase (one Gibbs step, probabilities for the statistics).
      weights_.multiply_transposed_into(h0_state, v1);
      add_inplace(v1, visible_bias_);
      sigmoid_inplace(v1);
      weights_.multiply_into(v1, h1_probs);
      add_inplace(h1_probs, hidden_bias_);
      sigmoid_inplace(h1_probs);

      momentum_update2(weights_, momentum_w_, h0_probs, v0, h1_probs, v1,
                       config.momentum, config.learning_rate,
                       -config.weight_decay);

      kernels::bias_momentum2_n(hidden_bias_.data(), momentum_h_.data(),
                                h0_probs.data(), h1_probs.data(),
                                config.momentum, config.learning_rate,
                                n_hidden());
      kernels::bias_momentum2_n(visible_bias_.data(), momentum_v_.data(),
                                v0.data(), v1.data(), config.momentum,
                                config.learning_rate, n_visible());

      err_acc += mse(v0, v1);
    }
    OBS_COUNTER_ADD("ann.kernel.gemv", data.size() * 2);
    OBS_COUNTER_ADD("ann.kernel.gemv_t", data.size());
    OBS_COUNTER_ADD("ann.kernel.sigmoid", data.size() * 3);
    OBS_COUNTER_ADD("ann.kernel.momentum", data.size());
    return err_acc / static_cast<double>(data.size());
  }

  for (std::size_t idx : order) {
    const Vector& v0 = data[idx];
    if (v0.size() != n_visible())
      throw std::invalid_argument("Rbm::train_epoch: sample size mismatch");

    // Positive phase.
    const Vector h0_probs = hidden_probs(v0);
    const Vector h0 =
        config.sample_hidden ? sample_bernoulli(h0_probs) : h0_probs;

    // Negative phase (one Gibbs step, probabilities for the statistics).
    const Vector v1 = visible_probs(h0);
    const Vector h1_probs = hidden_probs(v1);

    // Gradient with momentum and weight decay.
    Matrix grad(n_hidden(), n_visible());
    grad.add_outer(h0_probs, v0, 1.0);
    grad.add_outer(h1_probs, v1, -1.0);
    grad.add_scaled(weights_, -config.weight_decay);

    momentum_w_.scale(config.momentum);
    momentum_w_.add_scaled(grad, config.learning_rate);
    weights_.add_scaled(momentum_w_, 1.0);

    for (std::size_t i = 0; i < n_hidden(); ++i) {
      momentum_h_[i] = config.momentum * momentum_h_[i] +
                       config.learning_rate * (h0_probs[i] - h1_probs[i]);
      hidden_bias_[i] += momentum_h_[i];
    }
    for (std::size_t i = 0; i < n_visible(); ++i) {
      momentum_v_[i] = config.momentum * momentum_v_[i] +
                       config.learning_rate * (v0[i] - v1[i]);
      visible_bias_[i] += momentum_v_[i];
    }

    err_acc += mse(v0, v1);
  }
  return err_acc / static_cast<double>(data.size());
}

double Rbm::train_epoch_minibatch(const std::vector<Vector>& data,
                                  const RbmTrainConfig& config,
                                  const std::vector<std::size_t>& order) {
  // Minibatch CD-1: the Gibbs phases of a whole chunk run as batch GEMM
  // passes against frozen weights, hidden-state Bernoulli draws consume the
  // RNG in (sample, unit) order — the same stream order the per-sample path
  // uses — and the averaged CD statistics apply in one momentum step per
  // chunk. Everything routes through the kernel layer, so the result is
  // identical across scalar and SIMD builds.
  const std::size_t nv = n_visible();
  const std::size_t nh = n_hidden();
  double err_acc = 0.0;

  Matrix grad(nh, nv);
  Vector grad_h;
  Vector grad_v;

  for (std::size_t start = 0; start < order.size();
       start += config.batch_size) {
    const std::size_t b = std::min(config.batch_size, order.size() - start);

    kernels::BatchMatrix v0(b, nv);
    for (std::size_t s = 0; s < b; ++s) {
      const Vector& x = data[order[start + s]];
      if (x.size() != nv)
        throw std::invalid_argument("Rbm::train_epoch: sample size mismatch");
      v0.set_row(s, x);
    }

    // Positive phase (batched).
    kernels::BatchMatrix h0_probs(b, nh);
    kernels::gemm_batch(weights_.data().data(), nh, nv, v0.data(), b, v0.ld(),
                        h0_probs.data(), h0_probs.ld());
    for (std::size_t s = 0; s < b; ++s) {
      double* row = h0_probs.row(s);
      kernels::add_n(row, hidden_bias_.data(), nh);
      kernels::sigmoid_n(row, nh);
    }
    kernels::BatchMatrix h0_state(b, nh);
    if (config.sample_hidden) {
      for (std::size_t s = 0; s < b; ++s) {
        const double* p = h0_probs.row(s);
        double* h = h0_state.row(s);
        for (std::size_t i = 0; i < nh; ++i)
          h[i] = rng_.bernoulli(p[i]) ? 1.0 : 0.0;
      }
    }
    const kernels::BatchMatrix& h0 =
        config.sample_hidden ? h0_state : h0_probs;

    // Negative phase (one Gibbs step, probabilities for the statistics).
    kernels::BatchMatrix v1(b, nv);
    for (std::size_t s = 0; s < b; ++s) {
      double* row = v1.row(s);
      kernels::gemv_t_acc(weights_.data().data(), nh, nv, h0.row(s), row);
      kernels::add_n(row, visible_bias_.data(), nv);
      kernels::sigmoid_n(row, nv);
    }
    kernels::BatchMatrix h1_probs(b, nh);
    kernels::gemm_batch(weights_.data().data(), nh, nv, v1.data(), b, v1.ld(),
                        h1_probs.data(), h1_probs.ld());
    for (std::size_t s = 0; s < b; ++s) {
      double* row = h1_probs.row(s);
      kernels::add_n(row, hidden_bias_.data(), nh);
      kernels::sigmoid_n(row, nh);
    }

    // Averaged CD statistics, accumulated in sample order.
    const double inv_b = 1.0 / static_cast<double>(b);
    grad.scale(0.0);
    for (std::size_t s = 0; s < b; ++s) {
      kernels::outer_acc_n(grad.data().data(), h0_probs.row(s), v0.row(s),
                           1.0, nh, nv);
      kernels::outer_acc_n(grad.data().data(), h1_probs.row(s), v1.row(s),
                           -1.0, nh, nv);
    }
    momentum_w_.scale(config.momentum);
    momentum_w_.add_scaled(grad, config.learning_rate * inv_b);
    momentum_w_.add_scaled(weights_, -config.learning_rate *
                                         config.weight_decay);
    weights_.add_scaled(momentum_w_, 1.0);

    grad_h.assign(nh, 0.0);
    grad_v.assign(nv, 0.0);
    for (std::size_t s = 0; s < b; ++s) {
      kernels::axpy_n(grad_h.data(), h0_probs.row(s), 1.0, nh);
      kernels::axpy_n(grad_h.data(), h1_probs.row(s), -1.0, nh);
      kernels::axpy_n(grad_v.data(), v0.row(s), 1.0, nv);
      kernels::axpy_n(grad_v.data(), v1.row(s), -1.0, nv);
    }
    for (std::size_t i = 0; i < nh; ++i) {
      momentum_h_[i] = config.momentum * momentum_h_[i] +
                       config.learning_rate * inv_b * grad_h[i];
      hidden_bias_[i] += momentum_h_[i];
    }
    for (std::size_t i = 0; i < nv; ++i) {
      momentum_v_[i] = config.momentum * momentum_v_[i] +
                       config.learning_rate * inv_b * grad_v[i];
      visible_bias_[i] += momentum_v_[i];
    }

    for (std::size_t s = 0; s < b; ++s) {
      const double* a = v0.row(s);
      const double* c = v1.row(s);
      double acc = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        const double d = a[i] - c[i];
        acc += d * d;
      }
      err_acc += acc / static_cast<double>(nv);
    }
  }
  OBS_COUNTER_ADD("ann.kernel.gemm_batch",
                  2 * ((order.size() + config.batch_size - 1) /
                       config.batch_size));
  return err_acc / static_cast<double>(data.size());
}

double Rbm::train(const std::vector<Vector>& data,
                  const RbmTrainConfig& config) {
  double err = 0.0;
  for (std::size_t e = 0; e < config.epochs; ++e)
    err = train_epoch(data, config);
  return err;
}

double Rbm::reconstruction_mse(const std::vector<Vector>& data) const {
  if (data.empty()) return 0.0;
  // Independent reconstructions: per-index slots in parallel, serial sum
  // in data order (deterministic at any thread count).
  std::vector<double> errs(data.size());
  util::parallel_for(data.size(), [&](std::size_t i) {
    errs[i] = mse(data[i], visible_probs(hidden_probs(data[i])));
  });
  double acc = 0.0;
  for (double e : errs) acc += e;
  return acc / static_cast<double>(data.size());
}

}  // namespace solsched::ann
