#include "ann/rbm.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace solsched::ann {

Rbm::Rbm(std::size_t n_visible, std::size_t n_hidden, std::uint64_t seed)
    : rng_(seed) {
  if (n_visible == 0 || n_hidden == 0)
    throw std::invalid_argument("Rbm: layer sizes must be positive");
  weights_ = Matrix::randn(n_hidden, n_visible, rng_, 0.1);
  hidden_bias_.assign(n_hidden, 0.0);
  visible_bias_.assign(n_visible, 0.0);
  momentum_w_ = Matrix(n_hidden, n_visible);
  momentum_h_.assign(n_hidden, 0.0);
  momentum_v_.assign(n_visible, 0.0);
}

Vector Rbm::hidden_probs(const Vector& visible) const {
  Vector h = weights_.multiply(visible);
  add_inplace(h, hidden_bias_);
  sigmoid_inplace(h);
  return h;
}

Vector Rbm::visible_probs(const Vector& hidden) const {
  Vector v = weights_.multiply_transposed(hidden);
  add_inplace(v, visible_bias_);
  sigmoid_inplace(v);
  return v;
}

Vector Rbm::sample_bernoulli(const Vector& probs) {
  Vector s(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i)
    s[i] = rng_.bernoulli(probs[i]) ? 1.0 : 0.0;
  return s;
}

double Rbm::train_epoch(const std::vector<Vector>& data,
                        const RbmTrainConfig& config) {
  if (data.empty()) return 0.0;
  double err_acc = 0.0;
  const auto order = rng_.permutation(data.size());

  if (config.fused_kernels) {
    // Phase buffers live across the epoch; the CD-1 weight step is one
    // fused pass (momentum_update2) instead of building an explicit
    // gradient matrix per sample. RNG consumption matches the legacy path
    // exactly (one permutation + one Bernoulli draw per hidden unit).
    Vector h0_probs;
    Vector h0;
    Vector v1;
    Vector h1_probs;
    for (std::size_t idx : order) {
      const Vector& v0 = data[idx];
      if (v0.size() != n_visible())
        throw std::invalid_argument("Rbm::train_epoch: sample size mismatch");

      // Positive phase.
      weights_.multiply_into(v0, h0_probs);
      add_inplace(h0_probs, hidden_bias_);
      sigmoid_inplace(h0_probs);
      if (config.sample_hidden) {
        h0.assign(h0_probs.size(), 0.0);
        for (std::size_t i = 0; i < h0_probs.size(); ++i)
          h0[i] = rng_.bernoulli(h0_probs[i]) ? 1.0 : 0.0;
      }
      const Vector& h0_state = config.sample_hidden ? h0 : h0_probs;

      // Negative phase (one Gibbs step, probabilities for the statistics).
      weights_.multiply_transposed_into(h0_state, v1);
      add_inplace(v1, visible_bias_);
      sigmoid_inplace(v1);
      weights_.multiply_into(v1, h1_probs);
      add_inplace(h1_probs, hidden_bias_);
      sigmoid_inplace(h1_probs);

      momentum_update2(weights_, momentum_w_, h0_probs, v0, h1_probs, v1,
                       config.momentum, config.learning_rate,
                       -config.weight_decay);

      for (std::size_t i = 0; i < n_hidden(); ++i) {
        momentum_h_[i] = config.momentum * momentum_h_[i] +
                         config.learning_rate * (h0_probs[i] - h1_probs[i]);
        hidden_bias_[i] += momentum_h_[i];
      }
      for (std::size_t i = 0; i < n_visible(); ++i) {
        momentum_v_[i] = config.momentum * momentum_v_[i] +
                         config.learning_rate * (v0[i] - v1[i]);
        visible_bias_[i] += momentum_v_[i];
      }

      err_acc += mse(v0, v1);
    }
    return err_acc / static_cast<double>(data.size());
  }

  for (std::size_t idx : order) {
    const Vector& v0 = data[idx];
    if (v0.size() != n_visible())
      throw std::invalid_argument("Rbm::train_epoch: sample size mismatch");

    // Positive phase.
    const Vector h0_probs = hidden_probs(v0);
    const Vector h0 =
        config.sample_hidden ? sample_bernoulli(h0_probs) : h0_probs;

    // Negative phase (one Gibbs step, probabilities for the statistics).
    const Vector v1 = visible_probs(h0);
    const Vector h1_probs = hidden_probs(v1);

    // Gradient with momentum and weight decay.
    Matrix grad(n_hidden(), n_visible());
    grad.add_outer(h0_probs, v0, 1.0);
    grad.add_outer(h1_probs, v1, -1.0);
    grad.add_scaled(weights_, -config.weight_decay);

    momentum_w_.scale(config.momentum);
    momentum_w_.add_scaled(grad, config.learning_rate);
    weights_.add_scaled(momentum_w_, 1.0);

    for (std::size_t i = 0; i < n_hidden(); ++i) {
      momentum_h_[i] = config.momentum * momentum_h_[i] +
                       config.learning_rate * (h0_probs[i] - h1_probs[i]);
      hidden_bias_[i] += momentum_h_[i];
    }
    for (std::size_t i = 0; i < n_visible(); ++i) {
      momentum_v_[i] = config.momentum * momentum_v_[i] +
                       config.learning_rate * (v0[i] - v1[i]);
      visible_bias_[i] += momentum_v_[i];
    }

    err_acc += mse(v0, v1);
  }
  return err_acc / static_cast<double>(data.size());
}

double Rbm::train(const std::vector<Vector>& data,
                  const RbmTrainConfig& config) {
  double err = 0.0;
  for (std::size_t e = 0; e < config.epochs; ++e)
    err = train_epoch(data, config);
  return err;
}

double Rbm::reconstruction_mse(const std::vector<Vector>& data) const {
  if (data.empty()) return 0.0;
  // Independent reconstructions: per-index slots in parallel, serial sum
  // in data order (deterministic at any thread count).
  std::vector<double> errs(data.size());
  util::parallel_for(data.size(), [&](std::size_t i) {
    errs[i] = mse(data[i], visible_probs(hidden_probs(data[i])));
  });
  double acc = 0.0;
  for (double e : errs) acc += e;
  return acc / static_cast<double>(data.size());
}

}  // namespace solsched::ann
