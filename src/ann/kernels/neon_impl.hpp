// NEON (aarch64, 2-wide f64) bodies for the kernel layer — bit-exact with
// scalar_impl.hpp under the same rules as avx2_impl.hpp: separate mul/add
// (no vfma outside exp), per-output accumulation order preserved. The exp
// lanes here just call the scalar exp_d per element — NEON has no f64
// gather, and the sigmoid kernel is not the aarch64 bottleneck; correctness
// and determinism first.
//
// Only included by kernels.cpp when building for aarch64 with SIMD on.
#pragma once

#include <arm_neon.h>

#include <cstddef>

#include "ann/kernels/exp_kernel.hpp"
#include "ann/kernels/scalar_impl.hpp"

namespace solsched::ann::kernels::neon {

inline void gemv(const double* w, std::size_t rows, std::size_t cols,
                 const double* x, double* y) noexcept {
  std::size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* p0 = w + (r + 0) * cols;
    const double* p1 = w + (r + 1) * cols;
    float64x2_t acc = vdupq_n_f64(0.0);  // lane j accumulates row r+j.
    std::size_t c = 0;
    for (; c + 2 <= cols; c += 2) {
      const float64x2_t r0 = vld1q_f64(p0 + c);
      const float64x2_t r1 = vld1q_f64(p1 + c);
      const float64x2_t c0 = vzip1q_f64(r0, r1);
      const float64x2_t c1 = vzip2q_f64(r0, r1);
      acc = vaddq_f64(acc, vmulq_f64(c0, vdupq_n_f64(x[c])));
      acc = vaddq_f64(acc, vmulq_f64(c1, vdupq_n_f64(x[c + 1])));
    }
    double lanes[2] = {vgetq_lane_f64(acc, 0), vgetq_lane_f64(acc, 1)};
    for (; c < cols; ++c) {
      lanes[0] += p0[c] * x[c];
      lanes[1] += p1[c] * x[c];
    }
    y[r + 0] = lanes[0];
    y[r + 1] = lanes[1];
  }
  if (r < rows) scalar::gemv(w + r * cols, rows - r, cols, x, y + r);
}

inline void gemv_t_acc(const double* w, std::size_t rows, std::size_t cols,
                       const double* x, double* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    const float64x2_t xr = vdupq_n_f64(x[r]);
    const double* row = w + r * cols;
    std::size_t c = 0;
    for (; c + 2 <= cols; c += 2)
      vst1q_f64(y + c,
                vaddq_f64(vld1q_f64(y + c), vmulq_f64(vld1q_f64(row + c), xr)));
    for (; c < cols; ++c) y[c] += row[c] * x[r];
  }
}

inline void sigmoid_n(double* v, std::size_t n) noexcept {
  scalar::sigmoid_n(v, n);
}

inline void sigmoid_deriv_mul_n(double* d, const double* s,
                                std::size_t n) noexcept {
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t sv = vld1q_f64(s + i);
    const float64x2_t deriv = vmulq_f64(sv, vsubq_f64(one, sv));
    vst1q_f64(d + i, vmulq_f64(vld1q_f64(d + i), deriv));
  }
  for (; i < n; ++i) d[i] *= s[i] * (1.0 - s[i]);
}

inline void momentum_row_n(double* w, double* v, const double* b, double a,
                           double momentum, double coeff, double decay,
                           std::size_t n) noexcept {
  const float64x2_t av = vdupq_n_f64(a);
  const float64x2_t mv = vdupq_n_f64(momentum);
  const float64x2_t cv = vdupq_n_f64(coeff);
  const float64x2_t dv = vdupq_n_f64(decay);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wv = vld1q_f64(w + i);
    const float64x2_t grad = vaddq_f64(vmulq_f64(av, vld1q_f64(b + i)),
                                       vmulq_f64(dv, wv));
    const float64x2_t vel =
        vaddq_f64(vmulq_f64(mv, vld1q_f64(v + i)), vmulq_f64(cv, grad));
    vst1q_f64(v + i, vel);
    vst1q_f64(w + i, vaddq_f64(wv, vel));
  }
  if (i < n) scalar::momentum_row_n(w + i, v + i, b + i, a, momentum, coeff,
                                    decay, n - i);
}

inline void momentum_row2_n(double* w, double* v, const double* b1, double a1,
                            const double* b2, double a2, double momentum,
                            double coeff, double decay,
                            std::size_t n) noexcept {
  const float64x2_t a1v = vdupq_n_f64(a1);
  const float64x2_t a2v = vdupq_n_f64(a2);
  const float64x2_t mv = vdupq_n_f64(momentum);
  const float64x2_t cv = vdupq_n_f64(coeff);
  const float64x2_t dv = vdupq_n_f64(decay);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t wv = vld1q_f64(w + i);
    const float64x2_t grad =
        vaddq_f64(vsubq_f64(vmulq_f64(a1v, vld1q_f64(b1 + i)),
                            vmulq_f64(a2v, vld1q_f64(b2 + i))),
                  vmulq_f64(dv, wv));
    const float64x2_t vel =
        vaddq_f64(vmulq_f64(mv, vld1q_f64(v + i)), vmulq_f64(cv, grad));
    vst1q_f64(v + i, vel);
    vst1q_f64(w + i, vaddq_f64(wv, vel));
  }
  if (i < n) scalar::momentum_row2_n(w + i, v + i, b1 + i, a1, b2 + i, a2,
                                     momentum, coeff, decay, n - i);
}

inline void bias_momentum_n(double* b, double* v, const double* d,
                            double momentum, double lr,
                            std::size_t n) noexcept {
  const float64x2_t mv = vdupq_n_f64(momentum);
  const float64x2_t lv = vdupq_n_f64(lr);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vel = vsubq_f64(vmulq_f64(mv, vld1q_f64(v + i)),
                                      vmulq_f64(lv, vld1q_f64(d + i)));
    vst1q_f64(v + i, vel);
    vst1q_f64(b + i, vaddq_f64(vld1q_f64(b + i), vel));
  }
  if (i < n) scalar::bias_momentum_n(b + i, v + i, d + i, momentum, lr, n - i);
}

inline void bias_momentum2_n(double* b, double* v, const double* d1,
                             const double* d2, double momentum, double lr,
                             std::size_t n) noexcept {
  const float64x2_t mv = vdupq_n_f64(momentum);
  const float64x2_t lv = vdupq_n_f64(lr);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t diff = vsubq_f64(vld1q_f64(d1 + i), vld1q_f64(d2 + i));
    const float64x2_t vel =
        vaddq_f64(vmulq_f64(mv, vld1q_f64(v + i)), vmulq_f64(lv, diff));
    vst1q_f64(v + i, vel);
    vst1q_f64(b + i, vaddq_f64(vld1q_f64(b + i), vel));
  }
  if (i < n)
    scalar::bias_momentum2_n(b + i, v + i, d1 + i, d2 + i, momentum, lr,
                             n - i);
}

inline void axpy_n(double* w, const double* o, double scale,
                   std::size_t n) noexcept {
  const float64x2_t sv = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(w + i,
              vaddq_f64(vld1q_f64(w + i), vmulq_f64(sv, vld1q_f64(o + i))));
  for (; i < n; ++i) w[i] += scale * o[i];
}

inline void scale_n(double* w, double factor, std::size_t n) noexcept {
  const float64x2_t fv = vdupq_n_f64(factor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(w + i, vmulq_f64(vld1q_f64(w + i), fv));
  for (; i < n; ++i) w[i] *= factor;
}

inline void add_n(double* v, const double* w, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(v + i, vaddq_f64(vld1q_f64(v + i), vld1q_f64(w + i)));
  for (; i < n; ++i) v[i] += w[i];
}

inline void gemm_batch(const double* w, std::size_t rows, std::size_t cols,
                       const double* x, std::size_t n_samples,
                       std::size_t ldx, double* y, std::size_t ldy) noexcept {
  for (std::size_t s = 0; s < n_samples; ++s)
    gemv(w, rows, cols, x + s * ldx, y + s * ldy);
}

}  // namespace solsched::ann::kernels::neon
