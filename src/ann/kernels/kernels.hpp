// Vectorized kernel layer for the ANN stack (DESIGN.md §14).
//
// Every kernel has one *reference semantics*: the scalar loops in
// scalar_impl.hpp. The SIMD implementations (AVX2 on x86-64, NEON on
// aarch64; selected at configure time by -DSOLSCHED_SIMD=ON/OFF) are
// bit-exact re-orderings of the same operation sequence — multiplies and
// adds stay separate (no fused contraction), per-output accumulation order
// is preserved — so a SOLSCHED_SIMD=ON build and the scalar fallback
// produce identical doubles, not merely close ones. The only transcendental
// (exp, inside sigmoid) is the repo's own deterministic algorithm
// (exp_kernel.hpp), identical per element on both paths.
//
// Dispatch is compile-time: the implementation TU (kernels.cpp) is built
// with the target ISA flags and selects the vector body under
// SOLSCHED_SIMD_AVX2 / SOLSCHED_SIMD_NEON; a runtime CPUID check drops to
// the scalar body on hardware without the ISA, so a binary built with SIMD
// on never faults, it just slows down.
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::ann::kernels {

/// True when the SIMD implementation is compiled in *and* the running CPU
/// supports it (the pair of conditions that actually select vector bodies).
bool simd_active() noexcept;

/// "avx2", "neon" or "scalar" — the implementation simd_active() selects.
const char* arch_name() noexcept;

/// y[r] = Σ_c w[r·cols + c] · x[c], each row accumulated in ascending c
/// order (the reference dot-product order).
void gemv(const double* w, std::size_t rows, std::size_t cols,
          const double* x, double* y) noexcept;

/// y[c] += w[r·cols + c] · x[r] for r ascending (transposed GEMV,
/// accumulate form — elementwise in c, so reordering c is exact).
void gemv_t_acc(const double* w, std::size_t rows, std::size_t cols,
                const double* x, double* y) noexcept;

/// v[i] = 1 / (1 + exp_d(-v[i])).
void sigmoid_n(double* v, std::size_t n) noexcept;

/// d[i] *= s[i] · (1 - s[i])  (backprop through a sigmoid's output).
void sigmoid_deriv_mul_n(double* d, const double* s, std::size_t n) noexcept;

/// One weight row of the fused momentum step:
///   v[i] = momentum·v[i] + coeff·(a·b[i] + decay·w[i]);  w[i] += v[i].
void momentum_row_n(double* w, double* v, const double* b, double a,
                    double momentum, double coeff, double decay,
                    std::size_t n) noexcept;

/// Two-term (CD-1) variant: grad = a1·b1[i] - a2·b2[i] + decay·w[i].
void momentum_row2_n(double* w, double* v, const double* b1, double a1,
                     const double* b2, double a2, double momentum,
                     double coeff, double decay, std::size_t n) noexcept;

/// b[i] += (v[i] = momentum·v[i] - lr·d[i]).
void bias_momentum_n(double* b, double* v, const double* d, double momentum,
                     double lr, std::size_t n) noexcept;

/// Two-term (CD-1 bias) variant: b[i] += (v[i] = momentum·v[i] +
/// lr·(d1[i] - d2[i])).
void bias_momentum2_n(double* b, double* v, const double* d1,
                      const double* d2, double momentum, double lr,
                      std::size_t n) noexcept;

/// Whole-matrix momentum step: momentum_row_n over every row r with
/// a = a_vec[r]. One dispatch + call for the full matrix — the trainers
/// issue millions of these per run and the per-row call overhead was
/// comparable to the row work itself.
void momentum_mat_n(double* w, double* v, const double* a_vec,
                    const double* b, double momentum, double coeff,
                    double decay, std::size_t rows, std::size_t cols) noexcept;

/// Whole-matrix two-term (CD-1) momentum step: momentum_row2_n over every
/// row r with a1 = a1_vec[r], a2 = a2_vec[r].
void momentum_mat2_n(double* w, double* v, const double* a1_vec,
                     const double* b1, const double* a2_vec, const double* b2,
                     double momentum, double coeff, double decay,
                     std::size_t rows, std::size_t cols) noexcept;

/// Scaled outer-product accumulate: w[r][c] += (a[r]·scale) · b[c].
void outer_acc_n(double* w, const double* a, const double* b, double scale,
                 std::size_t rows, std::size_t cols) noexcept;

/// w[i] += scale · o[i].
void axpy_n(double* w, const double* o, double scale, std::size_t n) noexcept;

/// w[i] *= factor.
void scale_n(double* w, double factor, std::size_t n) noexcept;

/// v[i] += w[i].
void add_n(double* v, const double* w, std::size_t n) noexcept;

/// Batched GEMV over a sample panel: for every sample s,
///   y[s·ldy + r] = Σ_c w[r·cols + c] · x[s·ldx + c]  (ascending c).
/// Bit-exact with calling gemv once per sample — the SIMD body assigns one
/// lane per sample, so each output keeps the reference accumulation order.
void gemm_batch(const double* w, std::size_t rows, std::size_t cols,
                const double* x, std::size_t n_samples, std::size_t ldx,
                double* y, std::size_t ldy) noexcept;

/// Vector-width the padded batch layout rounds up to (a constant, so batch
/// layouts are identical across scalar and SIMD builds).
inline constexpr std::size_t kBatchPad = 4;

/// Contiguous row-major sample panel with a padded leading dimension: row s
/// starts at data()[s·ld()], columns beyond cols() are zero. The padded
/// stride keeps every row 32-byte aligned relative to the first and lets
/// the vector bodies run whole lanes over the ragged tail.
class BatchMatrix {
 public:
  BatchMatrix() = default;
  BatchMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        ld_((cols + kBatchPad - 1) / kBatchPad * kBatchPad),
        data_(rows * ld_, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return ld_; }

  double* row(std::size_t r) noexcept { return data_.data() + r * ld_; }
  const double* row(std::size_t r) const noexcept {
    return data_.data() + r * ld_;
  }
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Copies a logical row in (pad columns stay zero).
  void set_row(std::size_t r, const std::vector<double>& v) noexcept {
    double* dst = row(r);
    for (std::size_t c = 0; c < cols_ && c < v.size(); ++c) dst[c] = v[c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t ld_ = 0;
  std::vector<double> data_;
};

}  // namespace solsched::ann::kernels
