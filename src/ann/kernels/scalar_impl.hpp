// Scalar reference bodies for the kernel layer.
//
// These loops *define* the numeric semantics of every kernel: the SIMD
// bodies must reproduce them bit for bit (see kernels.hpp). They are the
// fallback for SOLSCHED_SIMD=OFF builds and for hardware without the
// compiled ISA, and the parity oracle for the `simd` test suite. Compiled
// in ISO mode (-std=c++20 ⇒ no FP contraction), so a·b + c here is two
// rounded operations — the vector bodies use separate mul/add intrinsics
// to match.
#pragma once

#include <cstddef>

#include "ann/kernels/exp_kernel.hpp"

namespace solsched::ann::kernels::scalar {

inline void gemv(const double* w, std::size_t rows, std::size_t cols,
                 const double* x, double* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const double* row = w + r * cols;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

inline void gemv_t_acc(const double* w, std::size_t rows, std::size_t cols,
                       const double* x, double* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    const double* row = w + r * cols;
    for (std::size_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

inline void sigmoid_n(double* v, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) v[i] = sigmoid_d(v[i]);
}

inline void sigmoid_deriv_mul_n(double* d, const double* s,
                                std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) d[i] *= s[i] * (1.0 - s[i]);
}

inline void momentum_row_n(double* w, double* v, const double* b, double a,
                           double momentum, double coeff, double decay,
                           std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double grad = a * b[i] + decay * w[i];
    v[i] = momentum * v[i] + coeff * grad;
    w[i] += v[i];
  }
}

inline void momentum_row2_n(double* w, double* v, const double* b1, double a1,
                            const double* b2, double a2, double momentum,
                            double coeff, double decay,
                            std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double grad = a1 * b1[i] - a2 * b2[i] + decay * w[i];
    v[i] = momentum * v[i] + coeff * grad;
    w[i] += v[i];
  }
}

inline void bias_momentum_n(double* b, double* v, const double* d,
                            double momentum, double lr,
                            std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = momentum * v[i] - lr * d[i];
    b[i] += v[i];
  }
}

inline void bias_momentum2_n(double* b, double* v, const double* d1,
                             const double* d2, double momentum, double lr,
                             std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = momentum * v[i] + lr * (d1[i] - d2[i]);
    b[i] += v[i];
  }
}

inline void axpy_n(double* w, const double* o, double scale,
                   std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) w[i] += scale * o[i];
}

inline void scale_n(double* w, double factor, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) w[i] *= factor;
}

inline void add_n(double* v, const double* w, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) v[i] += w[i];
}

inline void gemm_batch(const double* w, std::size_t rows, std::size_t cols,
                       const double* x, std::size_t n_samples,
                       std::size_t ldx, double* y, std::size_t ldy) noexcept {
  for (std::size_t s = 0; s < n_samples; ++s)
    gemv(w, rows, cols, x + s * ldx, y + s * ldy);
}

}  // namespace solsched::ann::kernels::scalar
