// Deterministic double-precision exp for the sigmoid kernels.
//
// The ANN stack must be bit-reproducible across platforms and across the
// scalar / SIMD builds (DESIGN.md §14). libm's exp is implementation
// defined — different libcs (and different glibc micro-arch dispatches)
// round differently — so, exactly like util::Rng replaces <random>, the
// kernels carry their own fixed exp algorithm: a 128-entry table-driven
// reduction (x = k/128·ln2 + r) with a degree-5 polynomial on the tiny
// remainder |r| <= ln2/256. Accuracy is within 1 ulp of a correctly
// rounded exp over the entire main range; the SIMD lanes execute the
// identical operation sequence per element, so scalar and vector builds
// agree bit for bit.
//
// std::fma is required semantically (single rounding); on hardware without
// a fused unit libm's soft fma gives the same bits, only slower.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace solsched::ann::kernels {

#include "ann/kernels/exp_table.inc"

inline constexpr double kExpInvLn2N = 0x1.71547652b82fep+7;  // 128/ln2.
inline constexpr double kExpLn2HiN = 0x1.62e42fefa39efp-8;   // ln2/128 head.
inline constexpr double kExpLn2LoN = 0x1.abc9e3b39803fp-63;  // ln2/128 tail.
inline constexpr double kExpShift = 0x1.8p52;  // 1.5·2^52 round-to-int bias.
inline constexpr std::int64_t kExpShiftBits = 0x4338000000000000;
inline constexpr double kExpC2 = 0.5;
inline constexpr double kExpC3 = 1.0 / 6.0;
inline constexpr double kExpC4 = 1.0 / 24.0;
inline constexpr double kExpC5 = 1.0 / 120.0;
/// Main-path cut-off: |x| <= kExpMainBound uses the table path directly;
/// the SIMD lanes use the same predicate to select scalar fix-ups, so the
/// two builds agree on which path every input takes.
inline constexpr double kExpMainBound = 512.0;

/// Table path, valid for finite |x| <= kExpMainBound.
inline double exp_main(double x) noexcept {
  const double z = x * kExpInvLn2N;
  double kd = z + kExpShift;
  const std::int64_t ki = std::bit_cast<std::int64_t>(kd) - kExpShiftBits;
  kd -= kExpShift;
  // r = x - k·ln2/128, exact to ~2^-76 thanks to the fused steps.
  const double r = std::fma(-kd, kExpLn2LoN, std::fma(-kd, kExpLn2HiN, x));
  const auto idx = static_cast<std::size_t>(ki & 127);
  // 2^(k/128) = 2^floor(k/128) · kExpHi[k mod 128]: add the integer part
  // straight into the exponent bits (normal range for |x| <= 512).
  const std::int64_t expo_bits = (ki - (ki & 127)) << 45;
  const double s =
      std::bit_cast<double>(std::bit_cast<std::int64_t>(kExpHi[idx]) +
                            expo_bits);
  const double p = std::fma(
      r * r, std::fma(r, std::fma(r, std::fma(r, kExpC5, kExpC4), kExpC3),
                      kExpC2),
      r);
  return std::fma(s, kExpTail[idx] + p, s);
}

/// Deterministic exp over the full double range (NaN/inf/overflow/underflow
/// handled; the rare |x| > 512 tail squares the half-argument result, which
/// is deterministic and accurate to ~2 ulp).
inline double exp_d(double x) noexcept {
  if (std::fabs(x) <= kExpMainBound) return exp_main(x);
  if (std::isnan(x)) return x;
  if (x > 709.9) return std::numeric_limits<double>::infinity();
  if (x < -745.2) return 0.0;
  const double h = exp_main(x * 0.5);
  return h * h;
}

/// Deterministic logistic sigmoid: 1 / (1 + exp(-x)). Division and
/// addition are correctly rounded IEEE ops, so bit-reproducibility reduces
/// to exp_d's.
inline double sigmoid_d(double x) noexcept {
  return 1.0 / (1.0 + exp_d(-x));
}

}  // namespace solsched::ann::kernels
