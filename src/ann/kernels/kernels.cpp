// Dispatch TU for the kernel layer.
//
// Built with the target ISA flags (-mavx2 -mfma on x86-64) when
// SOLSCHED_SIMD=ON; CMake defines SOLSCHED_SIMD_AVX2 / SOLSCHED_SIMD_NEON
// accordingly. Each public kernel branches once on a namespace-scope
// `static const bool` initialised from a runtime CPU check, so a SIMD build
// degrades to the scalar reference on hardware without the ISA instead of
// faulting. Zero-initialisation of the flag (false) before dynamic init
// means even static-init-order calls land safely on the scalar path.
#include "ann/kernels/kernels.hpp"

#include <vector>

#include "ann/kernels/scalar_impl.hpp"

#if defined(SOLSCHED_SIMD_AVX2)
#include "ann/kernels/avx2_impl.hpp"
#elif defined(SOLSCHED_SIMD_NEON)
#include "ann/kernels/neon_impl.hpp"
#endif

namespace solsched::ann::kernels {

namespace {

#if defined(SOLSCHED_SIMD_AVX2)
const bool kUseSimd = __builtin_cpu_supports("avx2") != 0 &&
                      __builtin_cpu_supports("fma") != 0;
#elif defined(SOLSCHED_SIMD_NEON)
// Baseline aarch64 always has Advanced SIMD with f64.
const bool kUseSimd = true;
#else
const bool kUseSimd = false;
#endif

}  // namespace

bool simd_active() noexcept { return kUseSimd; }

const char* arch_name() noexcept {
#if defined(SOLSCHED_SIMD_AVX2)
  if (kUseSimd) return "avx2";
#elif defined(SOLSCHED_SIMD_NEON)
  if (kUseSimd) return "neon";
#endif
  return "scalar";
}

#if defined(SOLSCHED_SIMD_AVX2)
namespace simd = avx2;
#elif defined(SOLSCHED_SIMD_NEON)
namespace simd = neon;
#else
namespace simd = scalar;
#endif

void gemv(const double* w, std::size_t rows, std::size_t cols,
          const double* x, double* y) noexcept {
  if (kUseSimd)
    simd::gemv(w, rows, cols, x, y);
  else
    scalar::gemv(w, rows, cols, x, y);
}

void gemv_t_acc(const double* w, std::size_t rows, std::size_t cols,
                const double* x, double* y) noexcept {
  if (kUseSimd)
    simd::gemv_t_acc(w, rows, cols, x, y);
  else
    scalar::gemv_t_acc(w, rows, cols, x, y);
}

void sigmoid_n(double* v, std::size_t n) noexcept {
  if (kUseSimd)
    simd::sigmoid_n(v, n);
  else
    scalar::sigmoid_n(v, n);
}

void sigmoid_deriv_mul_n(double* d, const double* s, std::size_t n) noexcept {
  if (kUseSimd)
    simd::sigmoid_deriv_mul_n(d, s, n);
  else
    scalar::sigmoid_deriv_mul_n(d, s, n);
}

void momentum_row_n(double* w, double* v, const double* b, double a,
                    double momentum, double coeff, double decay,
                    std::size_t n) noexcept {
  if (kUseSimd)
    simd::momentum_row_n(w, v, b, a, momentum, coeff, decay, n);
  else
    scalar::momentum_row_n(w, v, b, a, momentum, coeff, decay, n);
}

void momentum_row2_n(double* w, double* v, const double* b1, double a1,
                     const double* b2, double a2, double momentum,
                     double coeff, double decay, std::size_t n) noexcept {
  if (kUseSimd)
    simd::momentum_row2_n(w, v, b1, a1, b2, a2, momentum, coeff, decay, n);
  else
    scalar::momentum_row2_n(w, v, b1, a1, b2, a2, momentum, coeff, decay, n);
}

void bias_momentum_n(double* b, double* v, const double* d, double momentum,
                     double lr, std::size_t n) noexcept {
  if (kUseSimd)
    simd::bias_momentum_n(b, v, d, momentum, lr, n);
  else
    scalar::bias_momentum_n(b, v, d, momentum, lr, n);
}

void bias_momentum2_n(double* b, double* v, const double* d1,
                      const double* d2, double momentum, double lr,
                      std::size_t n) noexcept {
  if (kUseSimd)
    simd::bias_momentum2_n(b, v, d1, d2, momentum, lr, n);
  else
    scalar::bias_momentum2_n(b, v, d1, d2, momentum, lr, n);
}

void momentum_mat_n(double* w, double* v, const double* a_vec,
                    const double* b, double momentum, double coeff,
                    double decay, std::size_t rows,
                    std::size_t cols) noexcept {
  if (kUseSimd) {
    for (std::size_t r = 0; r < rows; ++r)
      simd::momentum_row_n(w + r * cols, v + r * cols, b, a_vec[r], momentum,
                           coeff, decay, cols);
  } else {
    for (std::size_t r = 0; r < rows; ++r)
      scalar::momentum_row_n(w + r * cols, v + r * cols, b, a_vec[r],
                             momentum, coeff, decay, cols);
  }
}

void momentum_mat2_n(double* w, double* v, const double* a1_vec,
                     const double* b1, const double* a2_vec, const double* b2,
                     double momentum, double coeff, double decay,
                     std::size_t rows, std::size_t cols) noexcept {
  if (kUseSimd) {
    for (std::size_t r = 0; r < rows; ++r)
      simd::momentum_row2_n(w + r * cols, v + r * cols, b1, a1_vec[r], b2,
                            a2_vec[r], momentum, coeff, decay, cols);
  } else {
    for (std::size_t r = 0; r < rows; ++r)
      scalar::momentum_row2_n(w + r * cols, v + r * cols, b1, a1_vec[r], b2,
                              a2_vec[r], momentum, coeff, decay, cols);
  }
}

void outer_acc_n(double* w, const double* a, const double* b, double scale,
                 std::size_t rows, std::size_t cols) noexcept {
  if (kUseSimd) {
    for (std::size_t r = 0; r < rows; ++r)
      simd::axpy_n(w + r * cols, b, a[r] * scale, cols);
  } else {
    for (std::size_t r = 0; r < rows; ++r)
      scalar::axpy_n(w + r * cols, b, a[r] * scale, cols);
  }
}

void axpy_n(double* w, const double* o, double scale, std::size_t n) noexcept {
  if (kUseSimd)
    simd::axpy_n(w, o, scale, n);
  else
    scalar::axpy_n(w, o, scale, n);
}

void scale_n(double* w, double factor, std::size_t n) noexcept {
  if (kUseSimd)
    simd::scale_n(w, factor, n);
  else
    scalar::scale_n(w, factor, n);
}

void add_n(double* v, const double* w, std::size_t n) noexcept {
  if (kUseSimd)
    simd::add_n(v, w, n);
  else
    scalar::add_n(v, w, n);
}

void gemm_batch(const double* w, std::size_t rows, std::size_t cols,
                const double* x, std::size_t n_samples, std::size_t ldx,
                double* y, std::size_t ldy) noexcept {
#if defined(SOLSCHED_SIMD_AVX2)
  if (kUseSimd) {
    // Thread-local pack panel: gemm_batch is called from parallel_for
    // workers during batched inference.
    thread_local std::vector<double> pack;
    if (pack.size() < cols * 4) pack.resize(cols * 4);
    avx2::gemm_batch(w, rows, cols, x, n_samples, ldx, y, ldy, pack.data());
    return;
  }
#elif defined(SOLSCHED_SIMD_NEON)
  if (kUseSimd) {
    neon::gemm_batch(w, rows, cols, x, n_samples, ldx, y, ldy);
    return;
  }
#endif
  scalar::gemm_batch(w, rows, cols, x, n_samples, ldx, y, ldy);
}

}  // namespace solsched::ann::kernels
