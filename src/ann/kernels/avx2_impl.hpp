// AVX2 bodies for the kernel layer — bit-exact with scalar_impl.hpp.
//
// Two rules keep the vector code on the scalar contract:
//   1. No contraction outside exp: every a·b + c is an explicit
//      _mm256_mul_pd followed by _mm256_add_pd, matching the two rounded
//      operations the ISO-mode scalar loops perform. Only exp_pd uses
//      _mm256_fmadd_pd, mirroring the std::fma calls in exp_main.
//   2. Per-output accumulation order is preserved. gemv/gemm assign one
//      *output* (row, or sample) per lane and walk the reduction dimension
//      serially, so each output sees the exact scalar summation order; the
//      elementwise kernels have no cross-lane dependencies at all.
//
// Only included by kernels.cpp when that TU is compiled with -mavx2 -mfma.
#pragma once

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "ann/kernels/exp_kernel.hpp"
#include "ann/kernels/scalar_impl.hpp"

namespace solsched::ann::kernels::avx2 {

/// Lane-wise exp_main (exp_kernel.hpp) for |x| <= kExpMainBound. Same
/// operation sequence as the scalar version; table values come in through
/// two gathers.
inline __m256d exp_main_pd(__m256d x) noexcept {
  const __m256d inv_ln2n = _mm256_set1_pd(kExpInvLn2N);
  const __m256d shift = _mm256_set1_pd(kExpShift);
  const __m256d z = _mm256_mul_pd(x, inv_ln2n);
  __m256d kd = _mm256_add_pd(z, shift);
  const __m256i ki =
      _mm256_sub_epi64(_mm256_castpd_si256(kd), _mm256_set1_epi64x(kExpShiftBits));
  kd = _mm256_sub_pd(kd, shift);
  const __m256d r = _mm256_fmadd_pd(
      _mm256_sub_pd(_mm256_setzero_pd(), kd), _mm256_set1_pd(kExpLn2LoN),
      _mm256_fmadd_pd(_mm256_sub_pd(_mm256_setzero_pd(), kd),
                      _mm256_set1_pd(kExpLn2HiN), x));
  const __m256i idx = _mm256_and_si256(ki, _mm256_set1_epi64x(127));
  // (ki - idx) << 45 == floor(ki/128) << 52: the integer exponent bits.
  const __m256i expo_bits = _mm256_slli_epi64(_mm256_sub_epi64(ki, idx), 45);
  const __m256d hi = _mm256_i64gather_pd(kExpHi, idx, 8);
  const __m256d tail = _mm256_i64gather_pd(kExpTail, idx, 8);
  const __m256d s = _mm256_castsi256_pd(
      _mm256_add_epi64(_mm256_castpd_si256(hi), expo_bits));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_fmadd_pd(r, _mm256_set1_pd(kExpC5), _mm256_set1_pd(kExpC4));
  p = _mm256_fmadd_pd(r, p, _mm256_set1_pd(kExpC3));
  p = _mm256_fmadd_pd(r, p, _mm256_set1_pd(kExpC2));
  p = _mm256_fmadd_pd(r2, p, r);
  return _mm256_fmadd_pd(s, _mm256_add_pd(tail, p), s);
}

/// Full-range lane-wise exp_d: vector main path, scalar fix-up for lanes
/// outside |x| <= kExpMainBound (the same predicate exp_d uses, so every
/// input takes the same path in both builds).
inline __m256d exp_pd(__m256d x) noexcept {
  const __m256d ax = _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
  // True for |x| > bound and for NaN (unordered compare).
  const __m256d odd =
      _mm256_cmp_pd(ax, _mm256_set1_pd(kExpMainBound), _CMP_NLE_UQ);
  __m256d res = exp_main_pd(x);
  const int mask = _mm256_movemask_pd(odd);
  if (mask != 0) [[unlikely]] {
    alignas(32) double xs[4];
    alignas(32) double rs[4];
    _mm256_store_pd(xs, x);
    _mm256_store_pd(rs, res);
    for (int lane = 0; lane < 4; ++lane)
      if (mask & (1 << lane)) rs[lane] = exp_d(xs[lane]);
    res = _mm256_load_pd(rs);
  }
  return res;
}

inline void sigmoid_n(double* v, std::size_t n) noexcept {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg0 = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  // Two independent exp chains per iteration: the gathers and divides of
  // the second vector overlap the first's latency. Lanes are independent,
  // so the pairing changes nothing numerically.
  for (; i + 8 <= n; i += 8) {
    const __m256d x0 = _mm256_loadu_pd(v + i);
    const __m256d x1 = _mm256_loadu_pd(v + i + 4);
    const __m256d e0 = exp_pd(_mm256_xor_pd(x0, neg0));  // exp(-x)
    const __m256d e1 = exp_pd(_mm256_xor_pd(x1, neg0));
    _mm256_storeu_pd(v + i, _mm256_div_pd(one, _mm256_add_pd(one, e0)));
    _mm256_storeu_pd(v + i + 4, _mm256_div_pd(one, _mm256_add_pd(one, e1)));
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(v + i);
    const __m256d e = exp_pd(_mm256_xor_pd(x, neg0));  // exp(-x)
    _mm256_storeu_pd(v + i, _mm256_div_pd(one, _mm256_add_pd(one, e)));
  }
  for (; i < n; ++i) v[i] = sigmoid_d(v[i]);
}

inline void gemv(const double* w, std::size_t rows, std::size_t cols,
                 const double* x, double* y) noexcept {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* p0 = w + (r + 0) * cols;
    const double* p1 = w + (r + 1) * cols;
    const double* p2 = w + (r + 2) * cols;
    const double* p3 = w + (r + 3) * cols;
    __m256d acc = _mm256_setzero_pd();  // lane j accumulates row r+j.
    std::size_t c = 0;
    for (; c + 2 <= cols; c += 2) {
      // Column pair c, c+1 of the four rows via two half-register loads and
      // one unpack each — two shuffle-port ops per 8 elements instead of the
      // eight a 4x4 transpose needs; x comes in as broadcast *loads*, which
      // stay off the shuffle port entirely.
      const __m256d a = _mm256_loadu2_m128d(p2 + c, p0 + c);
      const __m256d b = _mm256_loadu2_m128d(p3 + c, p1 + c);
      const __m256d c0 = _mm256_unpacklo_pd(a, b);
      const __m256d c1 = _mm256_unpackhi_pd(a, b);
      // Ascending column order per lane — the scalar dot order.
      acc = _mm256_add_pd(acc, _mm256_mul_pd(c0, _mm256_broadcast_sd(x + c)));
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(c1, _mm256_broadcast_sd(x + c + 1)));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (; c < cols; ++c) {
      lanes[0] += p0[c] * x[c];
      lanes[1] += p1[c] * x[c];
      lanes[2] += p2[c] * x[c];
      lanes[3] += p3[c] * x[c];
    }
    y[r + 0] = lanes[0];
    y[r + 1] = lanes[1];
    y[r + 2] = lanes[2];
    y[r + 3] = lanes[3];
  }
  if (r < rows) scalar::gemv(w + r * cols, rows - r, cols, x, y + r);
}

/// Register-resident body for cols/4 == NV vector blocks: the y accumulators
/// live in ymm registers across the whole row walk, so each row costs only
/// its w loads plus the multiply/add pair — no y store traffic per row.
/// Each y[c] still accumulates in ascending r order (bit-exact); tail
/// columns (cols % 4) are finished by a second scalar pass, which is also
/// ascending r per output.
template <int NV>
inline void gemv_t_acc_reg(const double* w, std::size_t rows,
                           std::size_t cols, const double* x,
                           double* y) noexcept {
  __m256d acc[NV];
  for (int k = 0; k < NV; ++k) acc[k] = _mm256_loadu_pd(y + 4 * k);
  for (std::size_t r = 0; r < rows; ++r) {
    const __m256d xr = _mm256_broadcast_sd(x + r);
    const double* row = w + r * cols;
    for (int k = 0; k < NV; ++k)
      acc[k] = _mm256_add_pd(
          acc[k], _mm256_mul_pd(_mm256_loadu_pd(row + 4 * k), xr));
  }
  for (int k = 0; k < NV; ++k) _mm256_storeu_pd(y + 4 * k, acc[k]);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = w + r * cols;
    for (std::size_t c = 4 * NV; c < cols; ++c) y[c] += row[c] * x[r];
  }
}

inline void gemv_t_acc(const double* w, std::size_t rows, std::size_t cols,
                       const double* x, double* y) noexcept {
  switch (cols / 4) {
    case 1: gemv_t_acc_reg<1>(w, rows, cols, x, y); return;
    case 2: gemv_t_acc_reg<2>(w, rows, cols, x, y); return;
    case 3: gemv_t_acc_reg<3>(w, rows, cols, x, y); return;
    case 4: gemv_t_acc_reg<4>(w, rows, cols, x, y); return;
    case 5: gemv_t_acc_reg<5>(w, rows, cols, x, y); return;
    case 6: gemv_t_acc_reg<6>(w, rows, cols, x, y); return;
    case 7: gemv_t_acc_reg<7>(w, rows, cols, x, y); return;
    case 8: gemv_t_acc_reg<8>(w, rows, cols, x, y); return;
    default: break;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const __m256d xr = _mm256_set1_pd(x[r]);
    const double* row = w + r * cols;
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m256d yv = _mm256_loadu_pd(y + c);
      const __m256d wv = _mm256_loadu_pd(row + c);
      _mm256_storeu_pd(y + c, _mm256_add_pd(yv, _mm256_mul_pd(wv, xr)));
    }
    for (; c < cols; ++c) y[c] += row[c] * x[r];
  }
}

inline void sigmoid_deriv_mul_n(double* d, const double* s,
                                std::size_t n) noexcept {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sv = _mm256_loadu_pd(s + i);
    const __m256d dv = _mm256_loadu_pd(d + i);
    const __m256d deriv = _mm256_mul_pd(sv, _mm256_sub_pd(one, sv));
    _mm256_storeu_pd(d + i, _mm256_mul_pd(dv, deriv));
  }
  for (; i < n; ++i) d[i] *= s[i] * (1.0 - s[i]);
}

inline void momentum_row_n(double* w, double* v, const double* b, double a,
                           double momentum, double coeff, double decay,
                           std::size_t n) noexcept {
  const __m256d av = _mm256_set1_pd(a);
  const __m256d mv = _mm256_set1_pd(momentum);
  const __m256d cv = _mm256_set1_pd(coeff);
  const __m256d dv = _mm256_set1_pd(decay);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d bv = _mm256_loadu_pd(b + i);
    const __m256d vv = _mm256_loadu_pd(v + i);
    const __m256d grad =
        _mm256_add_pd(_mm256_mul_pd(av, bv), _mm256_mul_pd(dv, wv));
    const __m256d vel =
        _mm256_add_pd(_mm256_mul_pd(mv, vv), _mm256_mul_pd(cv, grad));
    _mm256_storeu_pd(v + i, vel);
    _mm256_storeu_pd(w + i, _mm256_add_pd(wv, vel));
  }
  if (i < n) scalar::momentum_row_n(w + i, v + i, b + i, a, momentum, coeff,
                                    decay, n - i);
}

inline void momentum_row2_n(double* w, double* v, const double* b1, double a1,
                            const double* b2, double a2, double momentum,
                            double coeff, double decay,
                            std::size_t n) noexcept {
  const __m256d a1v = _mm256_set1_pd(a1);
  const __m256d a2v = _mm256_set1_pd(a2);
  const __m256d mv = _mm256_set1_pd(momentum);
  const __m256d cv = _mm256_set1_pd(coeff);
  const __m256d dv = _mm256_set1_pd(decay);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d vv = _mm256_loadu_pd(v + i);
    // grad = a1·b1 - a2·b2 + decay·w with the scalar's left-to-right adds.
    const __m256d grad = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(a1v, _mm256_loadu_pd(b1 + i)),
                      _mm256_mul_pd(a2v, _mm256_loadu_pd(b2 + i))),
        _mm256_mul_pd(dv, wv));
    const __m256d vel =
        _mm256_add_pd(_mm256_mul_pd(mv, vv), _mm256_mul_pd(cv, grad));
    _mm256_storeu_pd(v + i, vel);
    _mm256_storeu_pd(w + i, _mm256_add_pd(wv, vel));
  }
  if (i < n) scalar::momentum_row2_n(w + i, v + i, b1 + i, a1, b2 + i, a2,
                                     momentum, coeff, decay, n - i);
}

inline void bias_momentum_n(double* b, double* v, const double* d,
                            double momentum, double lr,
                            std::size_t n) noexcept {
  const __m256d mv = _mm256_set1_pd(momentum);
  const __m256d lv = _mm256_set1_pd(lr);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vel =
        _mm256_sub_pd(_mm256_mul_pd(mv, _mm256_loadu_pd(v + i)),
                      _mm256_mul_pd(lv, _mm256_loadu_pd(d + i)));
    _mm256_storeu_pd(v + i, vel);
    _mm256_storeu_pd(b + i, _mm256_add_pd(_mm256_loadu_pd(b + i), vel));
  }
  if (i < n) scalar::bias_momentum_n(b + i, v + i, d + i, momentum, lr, n - i);
}

inline void bias_momentum2_n(double* b, double* v, const double* d1,
                             const double* d2, double momentum, double lr,
                             std::size_t n) noexcept {
  const __m256d mv = _mm256_set1_pd(momentum);
  const __m256d lv = _mm256_set1_pd(lr);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(d1 + i), _mm256_loadu_pd(d2 + i));
    const __m256d vel =
        _mm256_add_pd(_mm256_mul_pd(mv, _mm256_loadu_pd(v + i)),
                      _mm256_mul_pd(lv, diff));
    _mm256_storeu_pd(v + i, vel);
    _mm256_storeu_pd(b + i, _mm256_add_pd(_mm256_loadu_pd(b + i), vel));
  }
  if (i < n)
    scalar::bias_momentum2_n(b + i, v + i, d1 + i, d2 + i, momentum, lr,
                             n - i);
}

inline void axpy_n(double* w, const double* o, double scale,
                   std::size_t n) noexcept {
  const __m256d sv = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d ov = _mm256_loadu_pd(o + i);
    _mm256_storeu_pd(w + i, _mm256_add_pd(wv, _mm256_mul_pd(sv, ov)));
  }
  for (; i < n; ++i) w[i] += scale * o[i];
}

inline void scale_n(double* w, double factor, std::size_t n) noexcept {
  const __m256d fv = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(w + i, _mm256_mul_pd(_mm256_loadu_pd(w + i), fv));
  for (; i < n; ++i) w[i] *= factor;
}

inline void add_n(double* v, const double* w, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(
        v + i, _mm256_add_pd(_mm256_loadu_pd(v + i), _mm256_loadu_pd(w + i)));
  for (; i < n; ++i) v[i] += w[i];
}

/// Lane-per-sample batched GEMV. A 4-sample panel of x is packed into
/// column-interleaved form once (pure data movement), then every weight row
/// walks it with broadcast multiplies — each sample's dot product runs in
/// its own lane in ascending column order, bit-exact with per-sample gemv.
inline void gemm_batch(const double* w, std::size_t rows, std::size_t cols,
                       const double* x, std::size_t n_samples,
                       std::size_t ldx, double* y, std::size_t ldy,
                       double* pack /* cols*4 scratch */) noexcept {
  std::size_t s = 0;
  for (; s + 4 <= n_samples; s += 4) {
    const double* x0 = x + (s + 0) * ldx;
    const double* x1 = x + (s + 1) * ldx;
    const double* x2 = x + (s + 2) * ldx;
    const double* x3 = x + (s + 3) * ldx;
    std::size_t c = 0;
    for (; c + 2 <= cols; c += 2) {
      const __m256d a = _mm256_loadu2_m128d(x2 + c, x0 + c);
      const __m256d b = _mm256_loadu2_m128d(x3 + c, x1 + c);
      _mm256_storeu_pd(pack + 4 * (c + 0), _mm256_unpacklo_pd(a, b));
      _mm256_storeu_pd(pack + 4 * (c + 1), _mm256_unpackhi_pd(a, b));
    }
    for (; c < cols; ++c) {
      pack[4 * c + 0] = x0[c];
      pack[4 * c + 1] = x1[c];
      pack[4 * c + 2] = x2[c];
      pack[4 * c + 3] = x3[c];
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* wr = w + r * cols;
      __m256d acc = _mm256_setzero_pd();  // lane j = sample s+j.
      for (std::size_t cc = 0; cc < cols; ++cc)
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(wr[cc]),
                               _mm256_loadu_pd(pack + 4 * cc)));
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, acc);
      y[(s + 0) * ldy + r] = lanes[0];
      y[(s + 1) * ldy + r] = lanes[1];
      y[(s + 2) * ldy + r] = lanes[2];
      y[(s + 3) * ldy + r] = lanes[3];
    }
  }
  for (; s < n_samples; ++s) gemv(w, rows, cols, x + s * ldx, y + s * ldy);
}

}  // namespace solsched::ann::kernels::avx2
