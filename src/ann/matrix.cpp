#include "ann/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "ann/kernels/exp_kernel.hpp"
#include "ann/kernels/kernels.hpp"

namespace solsched::ann {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (double& w : m.data_) w = rng.normal(0.0, stddev);
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void Matrix::multiply_into(const Vector& x, Vector& y) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  y.resize(rows_);
  kernels::gemv(data_.data(), rows_, cols_, x.data(), y.data());
}

Vector Matrix::multiply_transposed(const Vector& x) const {
  Vector y;
  multiply_transposed_into(x, y);
  return y;
}

void Matrix::multiply_transposed_into(const Vector& x, Vector& y) const {
  if (x.size() != rows_)
    throw std::invalid_argument("Matrix::multiply_transposed: size mismatch");
  y.assign(cols_, 0.0);
  kernels::gemv_t_acc(data_.data(), rows_, cols_, x.data(), y.data());
}

void Matrix::add_outer(const Vector& a, const Vector& b, double scale) {
  if (a.size() != rows_ || b.size() != cols_)
    throw std::invalid_argument("Matrix::add_outer: size mismatch");
  kernels::outer_acc_n(data_.data(), a.data(), b.data(), scale, rows_, cols_);
}

void Matrix::add_scaled(const Matrix& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_)
    throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  kernels::axpy_n(data_.data(), other.data_.data(), scale, data_.size());
}

void Matrix::scale(double factor) {
  kernels::scale_n(data_.data(), factor, data_.size());
}

double Matrix::frobenius() const {
  double acc = 0.0;
  for (double w : data_) acc += w * w;
  return std::sqrt(acc);
}

void momentum_update(Matrix& w, Matrix& vel, const Vector& a, const Vector& b,
                     double momentum, double coeff, double decay) {
  if (a.size() != w.rows() || b.size() != w.cols() ||
      vel.rows() != w.rows() || vel.cols() != w.cols())
    throw std::invalid_argument("momentum_update: size mismatch");
  kernels::momentum_mat_n(w.data().data(), vel.data().data(), a.data(),
                          b.data(), momentum, coeff, decay, w.rows(),
                          w.cols());
}

void momentum_update2(Matrix& w, Matrix& vel, const Vector& a1,
                      const Vector& b1, const Vector& a2, const Vector& b2,
                      double momentum, double coeff, double decay) {
  if (a1.size() != w.rows() || b1.size() != w.cols() ||
      a2.size() != w.rows() || b2.size() != w.cols() ||
      vel.rows() != w.rows() || vel.cols() != w.cols())
    throw std::invalid_argument("momentum_update2: size mismatch");
  kernels::momentum_mat2_n(w.data().data(), vel.data().data(), a1.data(),
                           b1.data(), a2.data(), b2.data(), momentum, coeff,
                           decay, w.rows(), w.cols());
}

double sigmoid(double x) noexcept { return kernels::sigmoid_d(x); }

void sigmoid_inplace(Vector& v) noexcept {
  kernels::sigmoid_n(v.data(), v.size());
}

double sigmoid_deriv_from_output(double s) noexcept { return s * (1.0 - s); }

void add_inplace(Vector& v, const Vector& w) {
  if (v.size() != w.size())
    throw std::invalid_argument("add_inplace: size mismatch");
  kernels::add_n(v.data(), w.data(), v.size());
}

double mse(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("mse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

}  // namespace solsched::ann
