#include "ann/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace solsched::ann {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                     double stddev) {
  Matrix m(rows, cols);
  for (double& w : m.data_) w = rng.normal(0.0, stddev);
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  Vector y;
  multiply_into(x, y);
  return y;
}

void Matrix::multiply_into(const Vector& x, Vector& y) const {
  if (x.size() != cols_)
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

Vector Matrix::multiply_transposed(const Vector& x) const {
  Vector y;
  multiply_transposed_into(x, y);
  return y;
}

void Matrix::multiply_transposed_into(const Vector& x, Vector& y) const {
  if (x.size() != rows_)
    throw std::invalid_argument("Matrix::multiply_transposed: size mismatch");
  y.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
}

void Matrix::add_outer(const Vector& a, const Vector& b, double scale) {
  if (a.size() != rows_ || b.size() != cols_)
    throw std::invalid_argument("Matrix::add_outer: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = &data_[r * cols_];
    const double ar = a[r] * scale;
    for (std::size_t c = 0; c < cols_; ++c) row[c] += ar * b[c];
  }
}

void Matrix::add_scaled(const Matrix& other, double scale) {
  if (other.rows_ != rows_ || other.cols_ != cols_)
    throw std::invalid_argument("Matrix::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += scale * other.data_[i];
}

void Matrix::scale(double factor) {
  for (double& w : data_) w *= factor;
}

double Matrix::frobenius() const {
  double acc = 0.0;
  for (double w : data_) acc += w * w;
  return std::sqrt(acc);
}

void momentum_update(Matrix& w, Matrix& vel, const Vector& a, const Vector& b,
                     double momentum, double coeff, double decay) {
  if (a.size() != w.rows() || b.size() != w.cols() ||
      vel.rows() != w.rows() || vel.cols() != w.cols())
    throw std::invalid_argument("momentum_update: size mismatch");
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double* wr = &w.data()[r * cols];
    double* vr = &vel.data()[r * cols];
    const double ar = a[r];
    for (std::size_t c = 0; c < cols; ++c) {
      const double grad = ar * b[c] + decay * wr[c];
      vr[c] = momentum * vr[c] + coeff * grad;
      wr[c] += vr[c];
    }
  }
}

void momentum_update2(Matrix& w, Matrix& vel, const Vector& a1,
                      const Vector& b1, const Vector& a2, const Vector& b2,
                      double momentum, double coeff, double decay) {
  if (a1.size() != w.rows() || b1.size() != w.cols() ||
      a2.size() != w.rows() || b2.size() != w.cols() ||
      vel.rows() != w.rows() || vel.cols() != w.cols())
    throw std::invalid_argument("momentum_update2: size mismatch");
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double* wr = &w.data()[r * cols];
    double* vr = &vel.data()[r * cols];
    const double a1r = a1[r];
    const double a2r = a2[r];
    for (std::size_t c = 0; c < cols; ++c) {
      const double grad = a1r * b1[c] - a2r * b2[c] + decay * wr[c];
      vr[c] = momentum * vr[c] + coeff * grad;
      wr[c] += vr[c];
    }
  }
}

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

void sigmoid_inplace(Vector& v) noexcept {
  for (double& x : v) x = sigmoid(x);
}

double sigmoid_deriv_from_output(double s) noexcept { return s * (1.0 - s); }

void add_inplace(Vector& v, const Vector& w) {
  if (v.size() != w.size())
    throw std::invalid_argument("add_inplace: size mismatch");
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += w[i];
}

double mse(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("mse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

}  // namespace solsched::ann
