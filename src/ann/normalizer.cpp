#include "ann/normalizer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/mathx.hpp"

namespace solsched::ann {

void Normalizer::fit(const std::vector<Vector>& data) {
  if (data.empty())
    throw std::invalid_argument("Normalizer::fit: empty data");
  const std::size_t d = data.front().size();
  mins_.assign(d, std::numeric_limits<double>::max());
  maxs_.assign(d, std::numeric_limits<double>::lowest());
  for (const auto& x : data) {
    if (x.size() != d)
      throw std::invalid_argument("Normalizer::fit: ragged data");
    for (std::size_t i = 0; i < d; ++i) {
      mins_[i] = std::min(mins_[i], x[i]);
      maxs_[i] = std::max(maxs_[i], x[i]);
    }
  }
}

void Normalizer::set_ranges(Vector mins, Vector maxs) {
  if (mins.size() != maxs.size())
    throw std::invalid_argument("Normalizer::set_ranges: size mismatch");
  mins_ = std::move(mins);
  maxs_ = std::move(maxs);
}

// Degenerate columns (max <= min: constant training data, or inverted
// explicit ranges) carry no information. Both maps share one rule so the
// round trip is exact: transform pins the column to the midpoint 0.5 and
// inverse returns the only representable raw value, mins_[i]. Without the
// inverse-side guard a negative range would extrapolate mins_ + range·y
// away from the column's actual value.
bool Normalizer::degenerate(std::size_t i) const noexcept {
  return !(maxs_[i] - mins_[i] > 0.0);
}

Vector Normalizer::transform(const Vector& x) const {
  if (!fitted()) throw std::logic_error("Normalizer: not fitted");
  if (x.size() != dims())
    throw std::invalid_argument("Normalizer::transform: size mismatch");
  Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = degenerate(i)
               ? 0.5
               : util::clamp((x[i] - mins_[i]) / (maxs_[i] - mins_[i]), 0.0,
                             1.0);
  }
  return y;
}

Vector Normalizer::inverse(const Vector& y) const {
  if (!fitted()) throw std::logic_error("Normalizer: not fitted");
  if (y.size() != dims())
    throw std::invalid_argument("Normalizer::inverse: size mismatch");
  Vector x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    x[i] = degenerate(i) ? mins_[i]
                         : mins_[i] + (maxs_[i] - mins_[i]) * y[i];
  return x;
}

}  // namespace solsched::ann
