#include "nvp/sim_result.hpp"

namespace solsched::nvp {

double SimResult::overall_dmr() const {
  if (periods.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& p : periods) acc += p.dmr;
  return acc / static_cast<double>(periods.size());
}

double SimResult::day_dmr(std::size_t day) const {
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& p : periods)
    if (p.day == day) {
      acc += p.dmr;
      ++count;
    }
  return count ? acc / static_cast<double>(count) : 0.0;
}

double SimResult::energy_utilization() const {
  const double solar = total_solar_j();
  return solar > 0.0 ? total_served_j() / solar : 0.0;
}

double SimResult::migration_efficiency() const {
  double in = 0.0, out = 0.0;
  for (const auto& p : periods) {
    in += p.migrated_in_j;
    out += p.cap_supplied_j;
  }
  return in > 0.0 ? out / in : 0.0;
}

double SimResult::total_solar_j() const {
  double acc = 0.0;
  for (const auto& p : periods) acc += p.solar_in_j;
  return acc;
}

double SimResult::total_served_j() const {
  double acc = 0.0;
  for (const auto& p : periods) acc += p.load_served_j;
  return acc;
}

double SimResult::total_loss_j() const {
  double acc = 0.0;
  for (const auto& p : periods)
    acc += p.conversion_loss_j + p.leakage_loss_j + p.spilled_j;
  return acc;
}

std::size_t SimResult::total_brownouts() const {
  std::size_t acc = 0;
  for (const auto& p : periods) acc += p.brownout_slots;
  return acc;
}

std::size_t SimResult::total_power_failures() const {
  std::size_t acc = 0;
  for (const auto& p : periods) acc += p.power_failures;
  return acc;
}

std::size_t SimResult::total_power_failure_slots() const {
  std::size_t acc = 0;
  for (const auto& p : periods) acc += p.power_failure_slots;
  return acc;
}

std::size_t SimResult::total_backups() const {
  std::size_t acc = 0;
  for (const auto& p : periods) acc += p.backups;
  return acc;
}

std::size_t SimResult::total_restores() const {
  std::size_t acc = 0;
  for (const auto& p : periods) acc += p.restores;
  return acc;
}

std::size_t SimResult::total_fallbacks() const {
  std::size_t acc = 0;
  for (const auto& p : periods) acc += p.fallbacks;
  return acc;
}

double SimResult::total_lost_progress_s() const {
  double acc = 0.0;
  for (const auto& p : periods) acc += p.lost_progress_s;
  return acc;
}

}  // namespace solsched::nvp
