// Simulation records and aggregate metrics.
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::nvp {

/// Ledger of one period.
struct PeriodRecord {
  std::size_t day = 0;
  std::size_t period = 0;
  double dmr = 0.0;                ///< Deadline miss rate of this period.
  std::size_t misses = 0;
  std::size_t completions = 0;
  std::size_t brownout_slots = 0;
  std::size_t cap_index = 0;       ///< Capacitor selected during the period.
  double solar_in_j = 0.0;
  double load_served_j = 0.0;      ///< direct + capacitor supplied energy.
  double stored_j = 0.0;           ///< Energy banked this period.
  double migrated_in_j = 0.0;      ///< Source energy sent into the capacitor.
  double cap_supplied_j = 0.0;     ///< Load energy served from storage.
  double conversion_loss_j = 0.0;
  double leakage_loss_j = 0.0;
  double spilled_j = 0.0;

  // -- fault-injection ledger (DESIGN.md §11). All zero without a plan. -----
  std::size_t power_failures = 0;       ///< Blackout entries this period.
  std::size_t power_failure_slots = 0;  ///< Slots spent fully dark.
  std::size_t backups = 0;              ///< NVP checkpoints written.
  std::size_t restores = 0;             ///< Recoveries (NVP replay or reboot).
  std::size_t fallbacks = 0;            ///< Policy degraded-mode periods.
  double backup_energy_j = 0.0;         ///< Energy drawn for checkpoints.
  double restore_energy_j = 0.0;        ///< Energy drawn for recoveries.
  double lost_progress_s = 0.0;         ///< Volatile baseline: wiped work.
};

/// Full result of simulating one (benchmark, trace, policy) triple.
struct SimResult {
  std::vector<PeriodRecord> periods;
  double initial_bank_energy_j = 0.0;  ///< Bank energy before the first slot.
  double final_bank_energy_j = 0.0;    ///< Bank energy after the last slot.

  /// Long-term DMR: mean of per-period DMRs (Eq. 6 with equal task counts).
  double overall_dmr() const;

  /// DMR restricted to one day.
  double day_dmr(std::size_t day) const;

  /// Energy utilization: load energy actually served / solar energy offered
  /// (the Fig. 9(b) metric — storage round trips and spills lower it).
  double energy_utilization() const;

  /// Fraction of migrated-in energy that later reached the load:
  /// cap_supplied / migrated_in (migration efficiency over the run).
  double migration_efficiency() const;

  double total_solar_j() const;
  double total_served_j() const;
  double total_loss_j() const;
  std::size_t total_brownouts() const;

  // Fault-ledger aggregates; all zero when no fault plan was attached.
  std::size_t total_power_failures() const;
  std::size_t total_power_failure_slots() const;
  std::size_t total_backups() const;
  std::size_t total_restores() const;
  std::size_t total_fallbacks() const;
  double total_lost_progress_s() const;
};

}  // namespace solsched::nvp
