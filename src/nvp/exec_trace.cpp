#include "nvp/exec_trace.hpp"

#include <algorithm>
#include <sstream>

namespace solsched::nvp {

void RecordingScheduler::begin_trace(const task::TaskGraph& graph,
                                     const NodeConfig& config,
                                     const solar::SolarTrace& trace) {
  slots_.clear();
  period_caps_.clear();
  current_cap_ = config.initial_cap;
  inner_->begin_trace(graph, config, trace);
}

PeriodPlan RecordingScheduler::begin_period(const PeriodContext& ctx) {
  PeriodPlan plan = inner_->begin_period(ctx);
  if (plan.select_cap) current_cap_ = *plan.select_cap;
  period_caps_.push_back(current_cap_);
  return plan;
}

std::vector<std::size_t> RecordingScheduler::schedule_slot(
    const SlotContext& ctx) {
  std::vector<std::size_t> chosen = inner_->schedule_slot(ctx);
  slots_.push_back(SlotRecord{chosen});
  return chosen;
}

std::string render_gantt(const task::TaskGraph& graph,
                         const std::vector<SlotRecord>& slots,
                         std::size_t begin, std::size_t end,
                         std::size_t slots_per_period) {
  end = std::min(end, slots.size());
  if (begin >= end) return {};

  // Label column width.
  std::size_t width = 4;
  for (const auto& t : graph.tasks()) width = std::max(width, t.name.size());

  std::ostringstream out;
  for (std::size_t id = 0; id < graph.size(); ++id) {
    const std::string& name = graph.task(id).name;
    out << name << std::string(width - name.size(), ' ') << " |";
    for (std::size_t s = begin; s < end; ++s) {
      if (slots_per_period && s > begin && (s % slots_per_period) == 0)
        out << '|';
      const auto& executed = slots[s].executed;
      const bool on = std::find(executed.begin(), executed.end(), id) !=
                      executed.end();
      out << (on ? '#' : '.');
    }
    out << "|\n";
  }
  return out.str();
}

}  // namespace solsched::nvp
