// Slot-level execution tracing.
//
// RecordingScheduler decorates any policy and records which tasks ran in
// every slot (and which capacitor each period used); render_gantt() turns a
// window of that record into an ASCII chart — one row per task, one column
// per slot — used by the examples and handy when debugging policies.
#pragma once

#include <string>
#include <vector>

#include "nvp/scheduler.hpp"

namespace solsched::nvp {

/// Record of one simulated slot.
struct SlotRecord {
  std::vector<std::size_t> executed;  ///< Tasks chosen for the slot.
};

/// Transparent decorator that logs every decision of the wrapped policy.
class RecordingScheduler final : public Scheduler {
 public:
  /// Does not take ownership; `inner` must outlive the recorder.
  explicit RecordingScheduler(Scheduler& inner) : inner_(&inner) {}

  std::string name() const override { return inner_->name(); }

  void begin_trace(const task::TaskGraph& graph, const NodeConfig& config,
                   const solar::SolarTrace& trace) override;
  PeriodPlan begin_period(const PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const SlotContext& ctx) override;

  /// One entry per simulated slot, in order.
  const std::vector<SlotRecord>& slots() const noexcept { return slots_; }

  /// Capacitor index selected in each period, in order.
  const std::vector<std::size_t>& period_caps() const noexcept {
    return period_caps_;
  }

 private:
  Scheduler* inner_;
  std::vector<SlotRecord> slots_;
  std::vector<std::size_t> period_caps_;
  std::size_t current_cap_ = 0;
};

/// Renders slots [begin, end) of a recording as an ASCII Gantt chart:
/// '#' = executing, '.' = idle. One row per task, one column per slot;
/// a '|' separator is inserted at period boundaries.
std::string render_gantt(const task::TaskGraph& graph,
                         const std::vector<SlotRecord>& slots,
                         std::size_t begin, std::size_t end,
                         std::size_t slots_per_period);

}  // namespace solsched::nvp
