#include "nvp/node_sim.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace solsched::nvp {
namespace {

/// Appends the per-period event batch for `record` to `events`. Cheap fields
/// only; called once per period so it never touches the per-slot hot path.
void emit_period_events(obs::SimTrace& events, const PeriodRecord& record,
                        const storage::CapacitorBank& bank,
                        std::size_t prev_cap_index, bool cap_switched,
                        double bank_begin_j, double bank_end_j) {
  const auto day = static_cast<std::uint32_t>(record.day);
  const auto period = static_cast<std::uint32_t>(record.period);

  obs::SimEvent energy;
  energy.type = "period_energy";
  energy.day = day;
  energy.period = period;
  energy.fields = {{"solar_in_j", record.solar_in_j},
                   {"load_served_j", record.load_served_j},
                   {"stored_j", record.stored_j},
                   {"migrated_in_j", record.migrated_in_j},
                   {"cap_supplied_j", record.cap_supplied_j},
                   {"conversion_loss_j", record.conversion_loss_j},
                   {"leakage_loss_j", record.leakage_loss_j},
                   {"spilled_j", record.spilled_j}};
  events.emit(std::move(energy));

  // Bank totals at the period boundaries (taken after aging/kill, so the
  // §12 conservation audit closes over exactly the in-period flows).
  obs::SimEvent bank_e;
  bank_e.type = "bank_energy";
  bank_e.day = day;
  bank_e.period = period;
  bank_e.fields = {{"begin_j", bank_begin_j}, {"end_j", bank_end_j}};
  events.emit(std::move(bank_e));

  obs::SimEvent volts;
  volts.type = "cap_voltages";
  volts.day = day;
  volts.period = period;
  volts.fields.emplace_back("selected",
                            static_cast<double>(bank.selected_index()));
  const std::vector<double> v = bank.voltages();
  for (std::size_t i = 0; i < v.size(); ++i)
    volts.fields.emplace_back("v" + std::to_string(i), v[i]);
  events.emit(std::move(volts));

  obs::SimEvent deadline;
  deadline.type = "deadline";
  deadline.day = day;
  deadline.period = period;
  deadline.fields = {
      {"misses", static_cast<double>(record.misses)},
      {"completions", static_cast<double>(record.completions)},
      {"dmr", record.dmr},
      {"brownout_slots", static_cast<double>(record.brownout_slots)}};
  events.emit(std::move(deadline));

  if (cap_switched) {
    obs::SimEvent sw;
    sw.type = "cap_switch";
    sw.day = day;
    sw.period = period;
    sw.fields = {{"from", static_cast<double>(prev_cap_index)},
                 {"to", static_cast<double>(bank.selected_index())}};
    events.emit(std::move(sw));
  }

  if (record.migrated_in_j > 0.0 || record.cap_supplied_j > 0.0) {
    obs::SimEvent mig;
    mig.type = "migration";
    mig.day = day;
    mig.period = period;
    mig.fields = {{"migrated_in_j", record.migrated_in_j},
                  {"cap_supplied_j", record.cap_supplied_j}};
    events.emit(std::move(mig));
  }

  // Per-period fault totals. The inline power_failure/backup/restore events
  // mark outage *entries* only, so a blackout spanning period boundaries
  // would be invisible to a trace consumer in its later periods; this event
  // gives the §12 DMR attribution per-period visibility. Guarded on fault
  // activity so fault-free traces stay bit-identical to the pre-§12 format.
  if (record.power_failures > 0 || record.power_failure_slots > 0 ||
      record.backups > 0 || record.restores > 0 || record.fallbacks > 0 ||
      record.lost_progress_s > 0.0) {
    obs::SimEvent fl;
    fl.type = "fault_ledger";
    fl.day = day;
    fl.period = period;
    fl.fields = {{"pf_entries", static_cast<double>(record.power_failures)},
                 {"pf_slots", static_cast<double>(record.power_failure_slots)},
                 {"backups", static_cast<double>(record.backups)},
                 {"restores", static_cast<double>(record.restores)},
                 {"fallbacks", static_cast<double>(record.fallbacks)},
                 {"backup_j", record.backup_energy_j},
                 {"restore_j", record.restore_energy_j},
                 {"lost_progress_s", record.lost_progress_s}};
    events.emit(std::move(fl));
  }
}

/// Validates one slot decision against Eq. 7-9 and the period's te set.
void validate_decision(const std::vector<std::size_t>& chosen,
                       const task::TaskGraph& graph,
                       const task::PeriodState& state,
                       const std::vector<bool>& enabled) {
  std::vector<bool> nvp_busy(graph.nvp_count(), false);
  std::vector<bool> seen(graph.size(), false);
  for (std::size_t id : chosen) {
    if (id >= graph.size())
      throw std::logic_error("scheduler chose an unknown task id");
    if (seen[id]) throw std::logic_error("scheduler chose a task twice");
    seen[id] = true;
    if (!enabled.empty() && !enabled[id])
      throw std::logic_error("scheduler chose a task outside its te set");
    if (state.completed(id))
      throw std::logic_error("scheduler chose a completed task");
    if (!state.ready(id))
      throw std::logic_error(
          "scheduler chose a task with incomplete dependencies");
    const std::size_t nvp = graph.task(id).nvp;
    if (nvp_busy[nvp])
      throw std::logic_error("scheduler put two tasks on one NVP");
    nvp_busy[nvp] = true;
  }
}

}  // namespace

SimResult simulate(const task::TaskGraph& graph,
                   const solar::SolarTrace& trace, Scheduler& policy,
                   const NodeConfig& config, solar::SolarPredictor& predictor,
                   obs::SimTrace* events, const fault::FaultInjector* faults) {
  config.validate();
  const solar::TimeGrid& grid = trace.grid();
  // An attached-but-inactive plan must behave exactly like no plan at all,
  // so normalise it away up front: every fault branch below tests `fx`.
  const fault::FaultInjector* fx =
      (faults != nullptr && faults->active()) ? faults : nullptr;
  if (fx != nullptr && !(fx->grid() == grid))
    throw std::invalid_argument(
        "simulate: fault injector was built for a different time grid");

  storage::CapacitorBank bank = config.make_bank();
  const storage::Pmu pmu(config.pmu);
  task::PeriodState state(graph);

  policy.begin_trace(graph, config, trace);
  predictor.reset();

  SimResult result;
  result.periods.reserve(grid.total_periods());
  result.initial_bank_energy_j = bank.total_energy_j();

  double dmr_sum = 0.0;
  std::size_t periods_done = 0;
  std::vector<double> last_period_solar;
  // A blackout can span period and day boundaries; entry/exit bookkeeping
  // (backup / restore) must fire once per outage, not once per period.
  bool in_blackout = false;

  for (std::size_t day = 0; day < grid.n_days; ++day) {
    if (fx != nullptr && fx->has_aging()) {
      const double cap_factor = fx->capacity_factor(day);
      const double leak_factor = fx->leakage_factor(day);
      for (std::size_t h = 0; h < bank.size(); ++h)
        bank.at(h).degrade(cap_factor, leak_factor);
    }
    for (std::size_t period = 0; period < grid.n_periods; ++period) {
      state.reset();

      if (fx != nullptr) {
        const auto killed = fx->cap_killed_at(grid.flat_period(day, period));
        if (killed) bank.at(*killed % bank.size()).kill();
      }

      // Ledger anchor: bank energy after the boundary effects (aging, cell
      // death) but before any in-period flow, so E_begin + solar_in balances
      // against E_end plus the recorded outflows (DESIGN.md §12).
      const double bank_begin_j = bank.total_energy_j();

      PeriodContext pctx;
      pctx.day = day;
      pctx.period = period;
      pctx.grid = &grid;
      pctx.graph = &graph;
      pctx.bank = &bank;
      pctx.predictor = &predictor;
      pctx.accumulated_dmr =
          periods_done ? dmr_sum / static_cast<double>(periods_done) : 0.0;
      pctx.last_period_solar_w = last_period_solar;

      const std::size_t prev_cap_index = bank.selected_index();
      PeriodPlan plan = policy.begin_period(pctx);
      if (plan.select_cap) bank.select(*plan.select_cap);
      const bool cap_switched = bank.selected_index() != prev_cap_index;
      if (!plan.tasks_enabled.empty() &&
          plan.tasks_enabled.size() != graph.size())
        throw std::logic_error("period plan te vector has wrong size");

      PeriodRecord record;
      record.day = day;
      record.period = period;
      record.cap_index = bank.selected_index();

      if (plan.used_fallback) {
        record.fallbacks = 1;
        if (events != nullptr) {
          obs::SimEvent fb;
          fb.type = "fallback";
          fb.day = static_cast<std::uint32_t>(day);
          fb.period = static_cast<std::uint32_t>(period);
          fb.fields = {{"code", static_cast<double>(plan.fallback_code)}};
          events->emit(std::move(fb));
        }
      }

      for (std::size_t slot = 0; slot < grid.n_slots; ++slot) {
        const double now_s = static_cast<double>(slot) * grid.dt_s;
        state.mark_deadlines(now_s);

        if (fx != nullptr && fx->blackout(grid.flat_slot(day, period, slot))) {
          // Power failure: supply and storage access are both cut. No
          // harvest, no scheduling; deadlines keep running and the bank
          // keeps leaking. On the way down the NVP checkpoints (backup
          // cost); the volatile baseline instead loses in-period progress.
          if (!in_blackout) {
            in_blackout = true;
            ++record.power_failures;
            if (events != nullptr) {
              obs::SimEvent pf;
              pf.type = "power_failure";
              pf.day = static_cast<std::uint32_t>(day);
              pf.period = static_cast<std::uint32_t>(period);
              pf.fields = {{"slot", static_cast<double>(slot)}};
              events->emit(std::move(pf));
            }
            if (config.volatile_baseline) {
              record.lost_progress_s += state.lose_progress();
            } else {
              const storage::DischargeResult d =
                  bank.selected().discharge(config.backup_energy_j);
              record.backup_energy_j += d.drawn_j;
              ++record.backups;
              if (events != nullptr) {
                obs::SimEvent bk;
                bk.type = "backup";
                bk.day = static_cast<std::uint32_t>(day);
                bk.period = static_cast<std::uint32_t>(period);
                bk.fields = {{"slot", static_cast<double>(slot)},
                             {"cost_j", d.drawn_j}};
                events->emit(std::move(bk));
              }
            }
          }
          ++record.power_failure_slots;
          record.leakage_loss_j += bank.apply_leakage_all(grid.dt_s);
          // Keep the predictor's slot alignment: the sensor reads nothing
          // while the node is dark.
          predictor.observe(0.0);
          continue;
        }

        if (in_blackout) {
          // First powered slot after an outage: the NVP replays its
          // checkpoint, the volatile baseline cold-reboots. Both pay.
          in_blackout = false;
          const storage::DischargeResult d =
              bank.selected().discharge(config.restore_energy_j);
          record.restore_energy_j += d.drawn_j;
          ++record.restores;
          if (events != nullptr) {
            obs::SimEvent rs;
            rs.type = "restore";
            rs.day = static_cast<std::uint32_t>(day);
            rs.period = static_cast<std::uint32_t>(period);
            rs.fields = {{"slot", static_cast<double>(slot)},
                         {"cost_j", d.drawn_j}};
            events->emit(std::move(rs));
          }
        }

        const double solar_w = trace.at(day, period, slot);
        // Sensor faults corrupt what the node *measures* (what the policy
        // and predictor see); the PMU harvests the physical power.
        const double measured_w =
            fx != nullptr
                ? fx->measured_solar_w(grid.flat_slot(day, period, slot),
                                       solar_w)
                : solar_w;

        SlotContext sctx;
        sctx.day = day;
        sctx.period = period;
        sctx.slot = slot;
        sctx.now_in_period_s = now_s;
        sctx.solar_w = measured_w;
        sctx.grid = &grid;
        sctx.graph = &graph;
        sctx.state = &state;
        sctx.bank = &bank;
        sctx.pmu = &pmu;
        sctx.predictor = &predictor;

        const std::vector<std::size_t> chosen = policy.schedule_slot(sctx);
        validate_decision(chosen, graph, state, plan.tasks_enabled);

        double load_w = 0.0;
        for (std::size_t id : chosen) load_w += graph.task(id).power_w;

        const storage::SlotFlow flow =
            pmu.run_slot(solar_w, load_w, bank, grid.dt_s);
        if (!flow.brownout)
          for (std::size_t id : chosen) state.execute(id, grid.dt_s);
        else
          ++record.brownout_slots;

        record.solar_in_j += flow.solar_in_j;
        record.load_served_j += flow.direct_supplied_j + flow.cap_supplied_j;
        record.stored_j += flow.stored_j;
        record.migrated_in_j += flow.migrated_in_j;
        record.cap_supplied_j += flow.cap_supplied_j;
        record.conversion_loss_j += flow.conversion_loss_j;
        record.leakage_loss_j += flow.leakage_loss_j;
        record.spilled_j += flow.spilled_j;

        predictor.observe(measured_w);
      }

      // Final deadline evaluation at the period boundary (deadlines equal to
      // ΔT are checked at the beginning of the next slot, Eq. 5 note).
      state.mark_deadlines(grid.period_s());
      record.dmr = state.dmr();
      record.misses = state.miss_count();
      record.completions = state.completed_count();

      if (events != nullptr)
        emit_period_events(*events, record, bank, prev_cap_index, cap_switched,
                           bank_begin_j, bank.total_energy_j());

      // Workload metrics, once per period; the per-slot hot path stays
      // untouched. These counters are deterministic (no wall clock), so they
      // are part of the N-thread == 1-thread totals contract.
      OBS_COUNTER_ADD("nvp.sim.periods", 1);
      OBS_COUNTER_ADD("nvp.sim.slots", grid.n_slots);
      OBS_COUNTER_ADD("nvp.sim.deadline_misses", record.misses);
      OBS_COUNTER_ADD("nvp.sim.completions", record.completions);
      OBS_COUNTER_ADD("nvp.sim.brownout_slots", record.brownout_slots);
      // Integer-valued samples keep the histogram sum exact (and therefore
      // order-independent across thread counts); per-period DMR lives in
      // the event trace where full precision matters.
      OBS_HISTOGRAM_OBSERVE("nvp.sim.period_misses",
                            (std::vector<double>{0.0, 1.0, 2.0, 5.0, 10.0}),
                            record.misses);
      // Fault counters are guarded so fault-free runs leave the metrics
      // snapshot untouched (part of the bit-identical no-plan contract).
      if (record.power_failures > 0)
        OBS_COUNTER_ADD("nvp.sim.power_failures", record.power_failures);
      if (record.power_failure_slots > 0)
        OBS_COUNTER_ADD("nvp.sim.power_failure_slots",
                        record.power_failure_slots);
      if (record.backups > 0) OBS_COUNTER_ADD("nvp.sim.backups", record.backups);
      if (record.restores > 0)
        OBS_COUNTER_ADD("nvp.sim.restores", record.restores);
      if (record.fallbacks > 0)
        OBS_COUNTER_ADD("nvp.sim.fallbacks", record.fallbacks);

      dmr_sum += record.dmr;
      ++periods_done;
      last_period_solar = trace.period_powers(day, period);
      result.periods.push_back(record);
    }
  }
  result.final_bank_energy_j = bank.total_energy_j();
  return result;
}

SimResult simulate(const task::TaskGraph& graph,
                   const solar::SolarTrace& trace, Scheduler& policy,
                   const NodeConfig& config, obs::SimTrace* events,
                   const fault::FaultInjector* faults) {
  solar::WcmaPredictor predictor(trace.grid().slots_per_day());
  return simulate(graph, trace, policy, config, predictor, events, faults);
}

}  // namespace solsched::nvp
