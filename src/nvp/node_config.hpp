// Static configuration of the simulated sensor node.
#pragma once

#include <vector>

#include "solar/time_grid.hpp"
#include "storage/leakage.hpp"
#include "storage/pmu.hpp"
#include "storage/regulator.hpp"

namespace solsched::nvp {

/// Everything fixed at design time: the time hierarchy, the distributed
/// capacitor bank, the regulator/leakage physics and the PMU.
struct NodeConfig {
  solar::TimeGrid grid = solar::default_grid();
  std::vector<double> capacities_f = {1.0, 10.0, 50.0, 100.0};
  double v_low = 0.5;
  double v_high = 5.0;
  storage::PmuConfig pmu{};
  storage::RegulatorModel regulators = storage::RegulatorModel::fitted_default();
  storage::LeakageModel leakage = storage::LeakageModel::fitted_default();
  /// Usable energy pre-loaded into the initially selected capacitor (J).
  double initial_usable_j = 0.0;
  /// Index of the capacitor selected at simulation start.
  std::size_t initial_cap = 0;

  /// Builds the bank described by this config.
  storage::CapacitorBank make_bank() const;
};

}  // namespace solsched::nvp
