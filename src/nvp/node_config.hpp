// Static configuration of the simulated sensor node.
#pragma once

#include <string>
#include <vector>

#include "solar/time_grid.hpp"
#include "storage/leakage.hpp"
#include "storage/pmu.hpp"
#include "storage/regulator.hpp"

namespace solsched::nvp {

/// Everything fixed at design time: the time hierarchy, the distributed
/// capacitor bank, the regulator/leakage physics and the PMU.
struct NodeConfig {
  solar::TimeGrid grid = solar::default_grid();
  std::vector<double> capacities_f = {1.0, 10.0, 50.0, 100.0};
  double v_low = 0.5;
  double v_high = 5.0;
  storage::PmuConfig pmu{};
  storage::RegulatorModel regulators = storage::RegulatorModel::fitted_default();
  storage::LeakageModel leakage = storage::LeakageModel::fitted_default();
  /// Usable energy pre-loaded into the initially selected capacitor (J).
  double initial_usable_j = 0.0;
  /// Index of the capacitor selected at simulation start.
  std::size_t initial_cap = 0;

  // -- NVP backup/restore model (DESIGN.md §11) -----------------------------
  // A *brownout* (load infeasible for a slot) stays free: the NVPs idle with
  // their nonvolatile state intact. A *power failure* (injected blackout:
  // supply and storage both cut) is different — the node checkpoints its
  // volatile peripherals into FRAM on the way down and replays them on
  // recovery, at a fixed energy cost drawn from the selected capacitor.
  /// Checkpoint cost charged once at power-failure entry (J).
  double backup_energy_j = 0.05;
  /// Replay/reboot cost charged at the first powered slot after an outage
  /// (J). Paid by the volatile baseline too (a cold reboot is not free).
  double restore_energy_j = 0.02;
  /// Ablation: model a volatile processor instead of an NVP — a power
  /// failure wipes all in-period task progress instead of checkpointing it
  /// (completed results persist; they were committed before the failure).
  bool volatile_baseline = false;

  /// Builds the bank described by this config.
  storage::CapacitorBank make_bank() const;

  /// All invalid-parameter findings, one human-readable line each; empty
  /// means the config is usable. Aggregated so a misconfigured node fails
  /// with every problem listed at once instead of piecemeal deep in the sim.
  std::vector<std::string> findings() const;

  /// Throws std::invalid_argument with every finding joined into one
  /// message. Called at nvp::simulate entry and by deserialize_controller.
  void validate() const;
};

}  // namespace solsched::nvp
