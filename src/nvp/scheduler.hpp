// Scheduler interface between the node simulator and scheduling policies.
//
// A policy is consulted twice per time scale:
//   * begin_period(): coarse-grained — may switch the selected capacitor and
//     restrict the task subset attempted this period (the paper's te vector);
//   * schedule_slot(): fine-grained — picks the tasks to execute in the
//     coming slot (at most one per NVP, only ready tasks).
// The simulator validates every decision and throws on constraint
// violations, so a policy bug cannot silently corrupt an experiment.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "nvp/node_config.hpp"
#include "solar/predictor.hpp"
#include "solar/solar_trace.hpp"
#include "storage/cap_bank.hpp"
#include "task/period_state.hpp"
#include "task/task_graph.hpp"

namespace solsched::nvp {

/// Read-only view handed to a policy at the start of each period.
struct PeriodContext {
  std::size_t day = 0;
  std::size_t period = 0;                       ///< Within the day.
  const solar::TimeGrid* grid = nullptr;
  const task::TaskGraph* graph = nullptr;
  const storage::CapacitorBank* bank = nullptr;
  solar::SolarPredictor* predictor = nullptr;   ///< Observed through last slot.
  double accumulated_dmr = 0.0;                 ///< DMR^acc so far (Eq. 19).
  std::vector<double> last_period_solar_w;      ///< Measured previous period.
};

/// Coarse-grained decision for one period.
struct PeriodPlan {
  /// Capacitor to select for this period (nullopt = keep current).
  std::optional<std::size_t> select_cap;
  /// te vector: tasks the policy intends to attempt this period. Empty means
  /// "all tasks". The simulator refuses slot decisions outside this set.
  std::vector<bool> tasks_enabled;
  /// Set by policies with a degraded mode (DESIGN.md §11): the primary
  /// decision procedure produced unusable output and a safe baseline plan was
  /// substituted. The simulator records it and emits a `fallback` event.
  bool used_fallback = false;
  /// Policy-specific reason code for the fallback (0 = none). The proposed
  /// scheduler uses sched::FallbackReason values.
  int fallback_code = 0;
};

/// Read-only view handed to a policy before each slot.
struct SlotContext {
  std::size_t day = 0;
  std::size_t period = 0;
  std::size_t slot = 0;
  double now_in_period_s = 0.0;                 ///< Slot start time.
  double solar_w = 0.0;                         ///< Measured current power.
  const solar::TimeGrid* grid = nullptr;
  const task::TaskGraph* graph = nullptr;
  const task::PeriodState* state = nullptr;
  const storage::CapacitorBank* bank = nullptr;
  const storage::Pmu* pmu = nullptr;
  solar::SolarPredictor* predictor = nullptr;
};

/// A scheduling policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Identifier used in reports ("Inter-task", "Proposed", ...).
  virtual std::string name() const = 0;

  /// Called once before a simulation. Offline policies (the static optimal
  /// upper bound) may read the whole trace here; online policies must
  /// ignore it and rely on the predictor.
  virtual void begin_trace(const task::TaskGraph& /*graph*/,
                           const NodeConfig& /*config*/,
                           const solar::SolarTrace& /*trace*/) {}

  /// Coarse-grained per-period decision.
  virtual PeriodPlan begin_period(const PeriodContext& ctx) = 0;

  /// Fine-grained per-slot decision: ids of tasks to execute next slot.
  virtual std::vector<std::size_t> schedule_slot(const SlotContext& ctx) = 0;
};

}  // namespace solsched::nvp
