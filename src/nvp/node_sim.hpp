// Slot-level node simulator.
//
// Drives a scheduling policy over a solar trace: per period it applies the
// policy's coarse plan (capacitor selection, te subset), per slot it asks
// for a task set, validates it against readiness / NVP-exclusivity / te
// constraints (Eq. 7-9), resolves energy flows through the PMU, advances
// task state, and accounts deadline misses (Eq. 5-6).
#pragma once

#include "fault/fault_injector.hpp"
#include "nvp/node_config.hpp"
#include "nvp/scheduler.hpp"
#include "nvp/sim_result.hpp"
#include "obs/sim_trace.hpp"

namespace solsched::nvp {

/// Runs `policy` on `graph` over `trace`. `predictor` supplies forecasts to
/// the policy and is fed every measured slot. Throws std::logic_error if the
/// policy violates a scheduling constraint, std::invalid_argument if `config`
/// fails NodeConfig::validate().
///
/// If `events` is non-null, one batch of typed per-period events is appended
/// per simulated period (period_energy, cap_voltages, deadline, plus
/// cap_switch / migration when those occur). The trace is owned by the caller
/// and is not thread-safe: give each concurrent simulation its own SimTrace.
///
/// If `faults` is non-null and its plan is active, the injector's
/// precomputed fault tables drive the run (DESIGN.md §11): blackout slots
/// cut supply *and* storage access (no harvest, no scheduling; the NVP pays
/// backup_energy_j at entry and restore_energy_j at recovery; the volatile
/// baseline instead wipes in-period task progress), sensor faults corrupt
/// the power the policy and predictor *see* without touching the physical
/// harvest, capacitor aging degrades the bank day by day, and a stuck-dead
/// cell may drop out mid-run. The injector is read-only here and may be
/// shared across concurrent simulations. A null injector — or an attached
/// plan with every rate at zero — leaves results bit-identical to a run
/// without the parameter.
SimResult simulate(const task::TaskGraph& graph,
                   const solar::SolarTrace& trace, Scheduler& policy,
                   const NodeConfig& config, solar::SolarPredictor& predictor,
                   obs::SimTrace* events = nullptr,
                   const fault::FaultInjector* faults = nullptr);

/// Convenience overload: builds a WCMA predictor internally.
SimResult simulate(const task::TaskGraph& graph,
                   const solar::SolarTrace& trace, Scheduler& policy,
                   const NodeConfig& config, obs::SimTrace* events = nullptr,
                   const fault::FaultInjector* faults = nullptr);

}  // namespace solsched::nvp
