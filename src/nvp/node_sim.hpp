// Slot-level node simulator.
//
// Drives a scheduling policy over a solar trace: per period it applies the
// policy's coarse plan (capacitor selection, te subset), per slot it asks
// for a task set, validates it against readiness / NVP-exclusivity / te
// constraints (Eq. 7-9), resolves energy flows through the PMU, advances
// task state, and accounts deadline misses (Eq. 5-6).
#pragma once

#include "nvp/node_config.hpp"
#include "nvp/scheduler.hpp"
#include "nvp/sim_result.hpp"

namespace solsched::nvp {

/// Runs `policy` on `graph` over `trace`. `predictor` supplies forecasts to
/// the policy and is fed every measured slot. Throws std::logic_error if the
/// policy violates a scheduling constraint.
SimResult simulate(const task::TaskGraph& graph,
                   const solar::SolarTrace& trace, Scheduler& policy,
                   const NodeConfig& config, solar::SolarPredictor& predictor);

/// Convenience overload: builds a WCMA predictor internally.
SimResult simulate(const task::TaskGraph& graph,
                   const solar::SolarTrace& trace, Scheduler& policy,
                   const NodeConfig& config);

}  // namespace solsched::nvp
