#include "nvp/node_config.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace solsched::nvp {

storage::CapacitorBank NodeConfig::make_bank() const {
  storage::CapacitorBank bank(capacities_f, regulators, leakage, v_low,
                              v_high);
  bank.select(initial_cap);
  bank.selected().set_usable_energy_j(initial_usable_j);
  return bank;
}

std::vector<std::string> NodeConfig::findings() const {
  std::vector<std::string> out;
  const auto flag = [&out](const std::string& msg) { out.push_back(msg); };
  const auto finite = [](double v) { return std::isfinite(v); };

  if (grid.n_days == 0) flag("grid.n_days must be > 0");
  if (grid.n_periods == 0) flag("grid.n_periods must be > 0");
  if (grid.n_slots == 0) flag("grid.n_slots must be > 0");
  if (!finite(grid.dt_s) || grid.dt_s <= 0.0)
    flag("grid.dt_s must be finite and > 0");

  if (capacities_f.empty()) {
    flag("capacities_f must name at least one capacitor");
  } else {
    for (std::size_t i = 0; i < capacities_f.size(); ++i)
      if (!finite(capacities_f[i]) || capacities_f[i] <= 0.0)
        flag("capacities_f[" + std::to_string(i) +
             "] must be finite and > 0 (got " +
             std::to_string(capacities_f[i]) + ")");
    if (initial_cap >= capacities_f.size())
      flag("initial_cap " + std::to_string(initial_cap) +
           " out of range for " + std::to_string(capacities_f.size()) +
           " capacitors");
  }

  if (!finite(v_low) || v_low < 0.0) flag("v_low must be finite and >= 0");
  if (!finite(v_high) || v_high <= v_low)
    flag("v_high must be finite and > v_low");

  if (!finite(initial_usable_j) || initial_usable_j < 0.0)
    flag("initial_usable_j must be finite and >= 0");

  if (!finite(pmu.direct_eta) || pmu.direct_eta <= 0.0 ||
      pmu.direct_eta > 1.0)
    flag("pmu.direct_eta must be finite and in (0, 1]");

  if (!finite(backup_energy_j) || backup_energy_j < 0.0)
    flag("backup_energy_j must be finite and >= 0");
  if (!finite(restore_energy_j) || restore_energy_j < 0.0)
    flag("restore_energy_j must be finite and >= 0");

  return out;
}

void NodeConfig::validate() const {
  const std::vector<std::string> problems = findings();
  if (problems.empty()) return;
  std::ostringstream msg;
  msg << "NodeConfig invalid (" << problems.size() << " finding"
      << (problems.size() == 1 ? "" : "s") << "):";
  for (const std::string& p : problems) msg << "\n  - " << p;
  throw std::invalid_argument(msg.str());
}

}  // namespace solsched::nvp
