#include "nvp/node_config.hpp"

namespace solsched::nvp {

storage::CapacitorBank NodeConfig::make_bank() const {
  storage::CapacitorBank bank(capacities_f, regulators, leakage, v_low,
                              v_high);
  bank.select(initial_cap);
  bank.selected().set_usable_energy_j(initial_usable_j);
  return bank;
}

}  // namespace solsched::nvp
