// Minimal CSV writing, used to dump experiment series for offline plotting.
#pragma once

#include <string>
#include <vector>

namespace solsched::util {

/// Accumulates rows and writes an RFC-4180-ish CSV file.
class CsvWriter {
 public:
  /// Sets the header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row of string cells (quoted if they contain separators).
  void add_row(std::vector<std::string> row);

  /// Appends a row of numeric cells formatted with 6 significant digits.
  void add_row(const std::vector<double>& row);

  /// Serializes all rows.
  std::string str() const;

  /// Writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace solsched::util
