// Small numeric helpers shared by the physics and scheduling code.
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::util {

/// Clamps x into [lo, hi]. Requires lo <= hi. Inline: this sits on the
/// per-slot storage path (tens of millions of calls per pipeline run).
inline double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation between a and b by t in [0, 1].
inline double lerp(double a, double b, double t) noexcept {
  return a + (b - a) * t;
}

/// n evenly spaced samples over [lo, hi] inclusive (n >= 2), or {lo} if n==1.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Evaluates a polynomial with coefficients c (c[0] + c[1] x + ...; Horner).
/// Inline for the same reason as clamp: regulator eta evaluations call this
/// once per charge/discharge of every simulated slot.
inline double polyval(const std::vector<double>& coeffs, double x) noexcept {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i > 0; --i) acc = acc * x + coeffs[i - 1];
  return acc;
}

/// Piecewise-linear interpolation through (xs, ys); xs strictly increasing.
/// Values outside the range clamp to the boundary ys.
double interp1(const std::vector<double>& xs, const std::vector<double>& ys,
               double x);

/// True if |a - b| <= tol (absolute tolerance).
bool approx_equal(double a, double b, double tol = 1e-9) noexcept;

/// Integer division rounding up; requires b > 0.
long long ceil_div(long long a, long long b) noexcept;

/// Solves the dense linear system A x = b (n x n, row-major) by Gaussian
/// elimination with partial pivoting. Returns false if singular (then x is
/// untouched).
bool solve_linear(std::vector<double> a, std::vector<double> b,
                  std::size_t n, std::vector<double>& x);

/// Golden-section search for the minimizer of f over [lo, hi].
/// f must be unimodal on the interval for an exact answer; otherwise a local
/// minimum is returned. tol is the final bracket width.
template <typename F>
double golden_minimize(F&& f, double lo, double hi, double tol = 1e-4) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace solsched::util
