#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace solsched::util {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    cells.emplace_back(buf);
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << str();
  return static_cast<bool>(file);
}

}  // namespace solsched::util
