// Descriptive statistics over sample vectors (metrics aggregation).
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::util {

/// Index of the nearest-rank percentile in a sorted sample of size n:
/// floor((n-1) * percent / 100), computed in integer arithmetic so the
/// campaign aggregates and metrics_report quantile columns stay
/// bit-reproducible (no float rounding at bucket boundaries). Returns 0
/// for n == 0; percent must be in [0, 100].
constexpr std::size_t nearest_rank_index(std::size_t n,
                                         std::size_t percent) noexcept {
  return n == 0 ? 0 : (n - 1) * percent / 100;
}

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs) noexcept;

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs) noexcept;

/// Minimum; 0 for an empty sample.
double min_of(const std::vector<double>& xs) noexcept;

/// Maximum; 0 for an empty sample.
double max_of(const std::vector<double>& xs) noexcept;

/// Sum of samples.
double sum(const std::vector<double>& xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]; 0 for an empty sample.
double percentile(std::vector<double> xs, double p) noexcept;

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) noexcept;

/// Mean absolute error between two equal-length samples.
double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b) noexcept;

}  // namespace solsched::util
