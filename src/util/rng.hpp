// Deterministic pseudo-random number generation.
//
// Experiments must be exactly reproducible across runs and platforms, so we
// implement a fixed algorithm (xoshiro256**, public domain reference
// algorithm by Blackman & Vigna) instead of relying on the
// implementation-defined distributions of <random>.
#pragma once

#include <cstdint>
#include <vector>

namespace solsched::util {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
///
/// All distribution mappings are implemented in-repo so results are
/// bit-reproducible regardless of the standard library in use.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// last index is returned.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

  /// Derives an independent child stream (for per-day / per-trial streams).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace solsched::util
