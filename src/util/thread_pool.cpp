#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace solsched::util {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

struct ThreadPool::Impl {
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> active{0};  ///< Workers currently inside work_on.
    std::atomic<bool> cancelled{false};
    // First exception by smallest index, so rethrow order is deterministic.
    std::mutex err_mutex;
    std::size_t err_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };

  std::size_t n_threads = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;   ///< Wakes workers on a new job.
  std::condition_variable done_cv;   ///< Wakes the caller on completion.
  Job* job = nullptr;
  std::uint64_t generation = 0;
  bool shutdown = false;

  // Serializes top-level run() calls from different threads.
  std::mutex run_mutex;

  static void record_error(Job& job, std::size_t index) {
    std::lock_guard<std::mutex> lock(job.err_mutex);
    if (index < job.err_index) {
      job.err_index = index;
      job.error = std::current_exception();
    }
    job.cancelled.store(true, std::memory_order_relaxed);
  }

  static void work_on(Job& job) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      if (!job.cancelled.load(std::memory_order_relaxed)) {
        try {
          (*job.fn)(i);
        } catch (...) {
          record_error(job, i);
        }
      }
      job.done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      Job* my_job = nullptr;
      {
        // The pool has no task queue (one job at a time, indices claimed by
        // fetch_add), so "idle" is the whole wait between jobs.
        const std::uint64_t wait_start =
            obs::enabled() ? obs::now_us() : 0;
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock,
                     [&] { return shutdown || generation != seen; });
        if (wait_start != 0)
          OBS_COUNTER_ADD("util.thread_pool.idle_us",
                          obs::now_us() - wait_start);
        if (shutdown) return;
        seen = generation;
        my_job = job;
        // Registered under the mutex so run() cannot retire the job while
        // this worker still holds a pointer to it.
        if (my_job) my_job->active.fetch_add(1, std::memory_order_relaxed);
      }
      if (!my_job) continue;
      work_on(*my_job);
      {
        std::lock_guard<std::mutex> lock(mutex);
        my_job->active.fetch_sub(1, std::memory_order_relaxed);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t n_threads) : impl_(new Impl) {
  impl_->n_threads = n_threads == 0 ? 1 : n_threads;
  OBS_GAUGE_SET("util.thread_pool.threads", impl_->n_threads);
  impl_->workers.reserve(impl_->n_threads - 1);
  for (std::size_t t = 0; t + 1 < impl_->n_threads; ++t)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

std::size_t ThreadPool::size() const noexcept { return impl_->n_threads; }

bool ThreadPool::in_worker() noexcept { return t_in_worker; }

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // jobs/indices count every run() call identically at any thread count;
  // parallel_jobs (and idle_us above) describe the execution shape and are
  // excluded from determinism comparisons (MetricsSnapshot::without_timing).
  OBS_COUNTER_ADD("util.thread_pool.jobs", 1);
  OBS_COUNTER_ADD("util.thread_pool.indices", n);
  if (n == 1 || impl_->workers.empty() || t_in_worker) {
    // Serial path: exceptions propagate directly; remaining indices are
    // skipped exactly as in the parallel path.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  OBS_COUNTER_ADD("util.thread_pool.parallel_jobs", 1);
  std::lock_guard<std::mutex> top(impl_->run_mutex);
  Impl::Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  // The caller participates instead of idling. While inside the job it
  // counts as a pool worker: nested run() calls from its own work items
  // must degrade to serial rather than re-enter run_mutex and deadlock.
  struct InWorkerGuard {
    InWorkerGuard() { t_in_worker = true; }
    ~InWorkerGuard() { t_in_worker = false; }
  };
  {
    InWorkerGuard guard;
    Impl::work_on(job);
  }

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) >= job.n &&
             job.active.load(std::memory_order_acquire) == 0;
    });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot.reset(new ThreadPool(thread_count_from_env()));
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t n_threads) {
  std::lock_guard<std::mutex> lock(global_mutex());
  global_slot().reset(new ThreadPool(n_threads));
}

std::size_t ThreadPool::parse_thread_count(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  std::size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    value = value * 10 + static_cast<std::size_t>(*p - '0');
    if (value > 65536) return 0;
  }
  return value;  // 0 stays invalid: a zero-thread pin is a typo.
}

std::size_t ThreadPool::thread_count_from_env() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  if (const char* env = std::getenv("SOLSCHED_THREADS")) {
    const std::size_t parsed = parse_thread_count(env);
    if (parsed > 0) return parsed;
    // Warn once: silently substituting hardware_concurrency would break the
    // thread-count pin the user thought they made (and with it any
    // expectation of run-shape reproducibility they attached to it).
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      std::fprintf(stderr,
                   "solsched: ignoring SOLSCHED_THREADS=\"%s\" (expected a "
                   "decimal integer in [1, 65536]); using %zu threads\n",
                   env, fallback);
  }
  return fallback;
}

}  // namespace solsched::util
