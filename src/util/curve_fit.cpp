#include "util/curve_fit.hpp"

#include <cmath>

#include "util/mathx.hpp"

namespace solsched::util {

FitResult polyfit(const std::vector<double>& xs, const std::vector<double>& ys,
                  std::size_t degree) {
  FitResult result;
  const std::size_t n = degree + 1;
  if (xs.size() != ys.size() || xs.size() < n) return result;

  // Normal equations: (X^T X) c = X^T y with X the Vandermonde matrix.
  std::vector<double> xtx(n * n, 0.0);
  std::vector<double> xty(n, 0.0);
  for (std::size_t s = 0; s < xs.size(); ++s) {
    std::vector<double> powers(2 * n - 1);
    powers[0] = 1.0;
    for (std::size_t p = 1; p < powers.size(); ++p)
      powers[p] = powers[p - 1] * xs[s];
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) xtx[r * n + c] += powers[r + c];
      xty[r] += powers[r] * ys[s];
    }
  }

  std::vector<double> coeffs;
  if (!solve_linear(std::move(xtx), std::move(xty), n, coeffs)) return result;

  result.coeffs = std::move(coeffs);
  result.rmse = poly_rmse(result.coeffs, xs, ys);
  result.ok = true;
  return result;
}

double poly_rmse(const std::vector<double>& coeffs,
                 const std::vector<double>& xs,
                 const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  double sse = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = polyval(coeffs, xs[i]) - ys[i];
    sse += r * r;
  }
  return std::sqrt(sse / static_cast<double>(xs.size()));
}

}  // namespace solsched::util
