#include "util/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace solsched::util {

KMeansResult kmeans_1d(const std::vector<double>& points, std::size_t k,
                       std::size_t max_iters) {
  KMeansResult result;
  if (points.empty()) return result;
  k = std::max<std::size_t>(1, std::min(k, points.size()));

  // Deterministic init: centroids at evenly spaced quantiles of the data.
  std::vector<double> sorted = points;
  std::sort(sorted.begin(), sorted.end());
  result.centroids.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double q = (static_cast<double>(c) + 0.5) / static_cast<double>(k);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    result.centroids[c] = sorted[idx];
  }

  result.labels.assign(points.size(), 0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assign.
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = std::fabs(points[i] - result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<double> sums(k, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.labels[i]] += points[i];
      ++counts[result.labels[i]];
    }
    for (std::size_t c = 0; c < k; ++c)
      if (counts[c] > 0)
        result.centroids[c] = sums[c] / static_cast<double>(counts[c]);
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
  }

  // Order centroids ascending and remap labels so output is canonical.
  std::vector<std::size_t> order(k);
  for (std::size_t c = 0; c < k; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.centroids[a] < result.centroids[b];
  });
  std::vector<std::size_t> rank(k);
  std::vector<double> sorted_centroids(k);
  for (std::size_t pos = 0; pos < k; ++pos) {
    rank[order[pos]] = pos;
    sorted_centroids[pos] = result.centroids[order[pos]];
  }
  result.centroids = std::move(sorted_centroids);
  for (auto& label : result.labels) label = rank[label];

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = points[i] - result.centroids[result.labels[i]];
    result.inertia += d * d;
  }
  return result;
}

}  // namespace solsched::util
