#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace solsched::util {

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& description) {
  flags_[name] = Flag{default_value, default_value, description, false};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + arg;
      return false;
    }
    if (!has_value) {
      // `--flag value` unless the next token is another flag (then bool).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::invalid_argument("Cli::get: undeclared flag " + name);
  return it->second.value;
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

long long Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::uint64_t Cli::get_seed(const std::string& name) const {
  return std::strtoull(get(name).c_str(), nullptr, 10);
}

bool Cli::was_set(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.default_value.empty())
      out << " (default: " << flag.default_value << ")";
    out << "\n      " << flag.description << "\n";
  }
  return out.str();
}

}  // namespace solsched::util
