#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace solsched::util {
namespace {

/// Full-string strtod: true when `text` is a complete, finite number.
bool parse_full_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (errno == ERANGE || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool parse_full_int(const std::string& text, long long* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool parse_full_seed(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  // strtoull silently wraps "-2" to a huge value; a negative seed is a typo.
  for (char c : text)
    if (c == '-' || c == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

/// Boolean literals accepted for kBool flags; nullptr result = not a literal.
const bool* parse_bool_literal(const std::string& text) {
  static const bool kTrue = true, kFalse = false;
  if (text == "true" || text == "1" || text == "yes" || text == "on")
    return &kTrue;
  if (text == "false" || text == "0" || text == "no" || text == "off")
    return &kFalse;
  return nullptr;
}

Cli::FlagType infer_type(const std::string& default_value) {
  if (default_value == "true" || default_value == "false")
    return Cli::FlagType::kBool;
  double ignored = 0.0;
  if (parse_full_double(default_value, &ignored)) return Cli::FlagType::kNumber;
  return Cli::FlagType::kString;
}

}  // namespace

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& description) {
  add_flag(name, default_value, description, infer_type(default_value));
}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& description, FlagType type) {
  flags_[name] = Flag{default_value, default_value, description, type, false};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + arg;
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      const bool next_is_flag =
          i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (flag.type == FlagType::kBool) {
        // A bare boolean flag means true; a following boolean literal is
        // consumed as its value, any other token is left alone (so
        // `--verbose --days 3` and `--verbose stray` both keep their
        // meaning: the former sets two flags, the latter errors on the
        // positional token in the next iteration).
        if (!next_is_flag && parse_bool_literal(argv[i + 1]) != nullptr)
          value = argv[++i];
        else
          value = "true";
      } else if (next_is_flag) {
        // A valueful flag at end-of-argv (or followed by another --flag)
        // used to silently become the string "true", which numeric parsing
        // then turned into 0. Report it instead.
        error_ = "flag --" + arg + " requires a value";
        return false;
      } else {
        value = argv[++i];
      }
    }
    switch (flag.type) {
      case FlagType::kNumber: {
        double parsed = 0.0;
        if (!parse_full_double(value, &parsed)) {
          error_ = "flag --" + arg + ": invalid number \"" + value + "\"";
          return false;
        }
        break;
      }
      case FlagType::kBool:
        if (parse_bool_literal(value) == nullptr) {
          error_ = "flag --" + arg + ": invalid boolean \"" + value +
                   "\" (use true/false/1/0/yes/no/on/off)";
          return false;
        }
        break;
      case FlagType::kString:
        break;
    }
    flag.value = value;
    flag.set = true;
  }
  return true;
}

const Cli::Flag& Cli::flag_of(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end())
    throw std::invalid_argument("Cli::get: undeclared flag " + name);
  return it->second;
}

std::string Cli::get(const std::string& name) const {
  return flag_of(name).value;
}

double Cli::get_double(const std::string& name) const {
  const std::string& value = flag_of(name).value;
  double parsed = 0.0;
  if (!parse_full_double(value, &parsed))
    throw std::invalid_argument("flag --" + name + ": invalid number \"" +
                                value + "\"");
  return parsed;
}

long long Cli::get_int(const std::string& name) const {
  const std::string& value = flag_of(name).value;
  long long parsed = 0;
  if (!parse_full_int(value, &parsed))
    throw std::invalid_argument("flag --" + name + ": invalid integer \"" +
                                value + "\"");
  return parsed;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string& value = flag_of(name).value;
  const bool* parsed = parse_bool_literal(value);
  if (parsed == nullptr)
    throw std::invalid_argument("flag --" + name + ": invalid boolean \"" +
                                value + "\"");
  return *parsed;
}

std::uint64_t Cli::get_seed(const std::string& name) const {
  const std::string& value = flag_of(name).value;
  std::uint64_t parsed = 0;
  if (!parse_full_seed(value, &parsed))
    throw std::invalid_argument("flag --" + name + ": invalid seed \"" +
                                value + "\" (unsigned decimal)");
  return parsed;
}

std::uint64_t Cli::get_uint(const std::string& name) const {
  return get_uint(name, std::numeric_limits<std::uint64_t>::max());
}

std::uint64_t Cli::get_uint(const std::string& name, std::uint64_t max) const {
  const std::string& value = flag_of(name).value;
  std::uint64_t parsed = 0;
  // parse_full_seed already refuses signs (no silent -1 -> 2^64-1 wrap),
  // fractions and ERANGE overflow; this accessor adds the domain bound.
  if (!parse_full_seed(value, &parsed))
    throw std::invalid_argument("flag --" + name +
                                ": invalid unsigned integer \"" + value +
                                "\"");
  if (parsed > max)
    throw std::invalid_argument("flag --" + name + ": value " + value +
                                " exceeds maximum " + std::to_string(max));
  return parsed;
}

bool Cli::was_set(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.default_value.empty())
      out << " (default: " << flag.default_value << ")";
    out << "\n      " << flag.description << "\n";
  }
  return out.str();
}

}  // namespace solsched::util
