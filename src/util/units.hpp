// Physical unit conventions used throughout solsched.
//
// All quantities are stored as plain `double` in SI units:
//   time    -> seconds   (s)
//   power   -> watts     (W)
//   energy  -> joules    (J)
//   voltage -> volts     (V)
//   capacity-> farads    (F)
//   area    -> square meters (m^2)
//
// The paper quotes task powers in mW and solar power in mW; helpers below
// convert at API boundaries so that internal arithmetic never mixes scales.
#pragma once

namespace solsched::util {

/// Milliwatts to watts.
constexpr double mw_to_w(double mw) noexcept { return mw * 1e-3; }
/// Watts to milliwatts.
constexpr double w_to_mw(double w) noexcept { return w * 1e3; }

/// Millijoules to joules.
constexpr double mj_to_j(double mj) noexcept { return mj * 1e-3; }
/// Joules to millijoules.
constexpr double j_to_mj(double j) noexcept { return j * 1e3; }

/// Minutes to seconds.
constexpr double min_to_s(double minutes) noexcept { return minutes * 60.0; }
/// Hours to seconds.
constexpr double h_to_s(double hours) noexcept { return hours * 3600.0; }
/// Seconds to hours.
constexpr double s_to_h(double seconds) noexcept { return seconds / 3600.0; }

/// Square centimeters to square meters.
constexpr double cm2_to_m2(double cm2) noexcept { return cm2 * 1e-4; }

/// Seconds in one day.
inline constexpr double kSecondsPerDay = 86400.0;

/// Peak terrestrial solar irradiance used by the clear-sky model (W/m^2).
inline constexpr double kPeakIrradiance = 1000.0;

}  // namespace solsched::util
