#include "util/mathx.hpp"

#include <cmath>
#include <stdexcept>

namespace solsched::util {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) return {};
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

double interp1(const std::vector<double>& xs, const std::vector<double>& ys,
               double x) {
  if (xs.empty() || xs.size() != ys.size())
    throw std::invalid_argument("interp1: mismatched or empty tables");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  // Binary search for the enclosing segment.
  std::size_t lo = 0, hi = xs.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (xs[mid] <= x)
      lo = mid;
    else
      hi = mid;
  }
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return lerp(ys[lo], ys[hi], t);
}

bool approx_equal(double a, double b, double tol) noexcept {
  return std::fabs(a - b) <= tol;
}

long long ceil_div(long long a, long long b) noexcept {
  return (a + b - 1) / b;
}

bool solve_linear(std::vector<double> a, std::vector<double> b, std::size_t n,
                  std::vector<double>& x) {
  if (a.size() != n * n || b.size() != n) return false;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col]))
        pivot = row;
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k)
        std::swap(a[pivot * n + k], a[col * n + k]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k)
        a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i > 0; --i) {
    const std::size_t row = i - 1;
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) acc -= a[row * n + k] * x[k];
    x[row] = acc / a[row * n + row];
  }
  return true;
}

}  // namespace solsched::util
