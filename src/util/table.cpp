#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace solsched::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  if (cols == 0) return {};

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += widths[c];
    total += 2 * (cols - 1);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace solsched::util
