// Fixed-size thread pool and a deterministic parallel_for.
//
// Determinism contract (relied on by sched/, sizing/, core/ and ann/):
// parallel_for(n, fn) invokes fn(i) exactly once for every i in [0, n) and
// callers must write results only to pre-sized per-index slots; any
// reduction over those slots happens serially, in index order, after
// parallel_for returns. Under that discipline the numeric output is
// bit-identical at every thread count, including 1.
//
// The global pool is sized from the SOLSCHED_THREADS environment variable
// (default: std::thread::hardware_concurrency). parallel_for called from
// inside a pool worker runs the body serially in that worker — nested
// parallel regions degrade gracefully instead of deadlocking.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace solsched::util {

/// A fixed set of worker threads executing index-ranged jobs.
class ThreadPool {
 public:
  /// Spawns `n_threads - 1` workers (the calling thread participates in
  /// every job). n_threads == 0 is clamped to 1 (fully serial).
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (>= 1), counting the calling thread.
  std::size_t size() const noexcept;

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  /// The first exception (by smallest index i) is rethrown in the caller;
  /// once any body throws, not-yet-started indices are skipped.
  /// Serial fallbacks: n <= 1, size() == 1, or when called from inside a
  /// pool worker (nested use).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the current thread is a pool worker (nested region).
  static bool in_worker() noexcept;

  /// Process-wide pool, created on first use with thread_count_from_env().
  static ThreadPool& global();

  /// Replaces the global pool with one of `n_threads` threads. Not safe
  /// while parallel work is in flight; intended for benches and tests that
  /// sweep thread counts from the main thread.
  static void set_global_threads(std::size_t n_threads);

  /// SOLSCHED_THREADS if set and valid, else hardware_concurrency (else 1).
  /// A set-but-malformed SOLSCHED_THREADS breaks the reproducibility pin the
  /// user thought they made, so it warns once to stderr before falling back.
  static std::size_t thread_count_from_env();

  /// Parses the SOLSCHED_THREADS grammar: decimal digits only (no sign,
  /// whitespace, hex or suffixes), value in [1, 65536]. Returns 0 for
  /// anything else — "all", "0x4", "-2", "0" and "" are all invalid.
  static std::size_t parse_thread_count(const char* text) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// parallel_for over the global pool; see the determinism contract above.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  ThreadPool::global().run(n, std::function<void(std::size_t)>(
                                  [&fn](std::size_t i) { fn(i); }));
}

}  // namespace solsched::util
