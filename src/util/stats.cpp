#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace solsched::util {

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min_of(const std::vector<double>& xs) noexcept {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) noexcept {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double sum(const std::vector<double>& xs) noexcept {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc;
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

double correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean_abs_error(const std::vector<double>& a,
                      const std::vector<double>& b) noexcept {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::fabs(a[i] - b[i]);
  return acc / static_cast<double>(a.size());
}

}  // namespace solsched::util
