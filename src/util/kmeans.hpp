// One-dimensional k-means clustering.
//
// Used by capacitor sizing (Sec. 4.1): the per-day optimal capacities
// {C_i^opt} are clustered into H sets and each distributed super capacitor
// takes the mean of its cluster.
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::util {

/// Clustering outcome for 1-D k-means.
struct KMeansResult {
  std::vector<double> centroids;       ///< Cluster means, ascending.
  std::vector<std::size_t> labels;     ///< Cluster index per input point.
  double inertia = 0.0;                ///< Sum of squared in-cluster distances.
  std::size_t iterations = 0;          ///< Lloyd iterations performed.
};

/// Runs Lloyd's algorithm on scalar data with deterministic quantile-based
/// initialization. k is clamped to [1, points.size()]. Empty input yields an
/// empty result.
KMeansResult kmeans_1d(const std::vector<double>& points, std::size_t k,
                       std::size_t max_iters = 100);

}  // namespace solsched::util
