// Plain-text table formatting for benchmark harness output.
//
// Every bench binary prints paper-style rows (Table 2, Figures 8-10); this
// keeps the formatting in one place so the outputs line up and are greppable.
#pragma once

#include <string>
#include <vector>

namespace solsched::util {

/// Column-aligned ASCII table builder.
class TextTable {
 public:
  /// Sets the header row (defines the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator under the header.
  std::string str() const;

  /// Number of data rows added so far.
  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given decimal places.
std::string fmt(double value, int decimals = 3);

/// Formats a ratio as a percentage string, e.g. 0.278 -> "27.8%".
std::string fmt_pct(double ratio, int decimals = 1);

}  // namespace solsched::util
