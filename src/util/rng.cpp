#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace solsched::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64: expands a single seed into well-distributed state words.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() noexcept {
  // Box-Muller; regenerate u1 until nonzero to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_u64() % i;
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() noexcept { return Rng{next_u64()}; }

}  // namespace solsched::util
