// Minimal command-line flag parsing for the examples, benches and tools.
//
// Flags are of the form `--name value` or `--name=value`; a declared boolean
// flag may appear bare (`--verbose`). Unknown flags are an error so typos
// don't silently fall back to defaults mid-experiment, and numeric flags are
// validated at parse time so `--seed oops` or `--eta 1.5x` is a reported
// error instead of a silent zero.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace solsched::util {

/// Parsed command line with typed accessors and a generated usage string.
class Cli {
 public:
  /// How a flag's value is validated and how a bare `--flag` is read.
  enum class FlagType {
    kString,  ///< Any value; requires an explicit value on the command line.
    kBool,    ///< true/false/1/0/yes/no/on/off; bare `--flag` means true.
    kNumber,  ///< Finite decimal number, fully consumed; value required.
  };

  /// Declares a flag before parsing. `description` feeds usage(). The type
  /// is inferred from the default: "true"/"false" declare a boolean, a
  /// string that parses completely as a finite number declares a numeric
  /// flag, anything else a string flag.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& description);

  /// Declares a flag with an explicit type (e.g. a string flag whose
  /// default happens to look numeric).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& description, FlagType type);

  /// Parses argv. Returns false (and fills error()) on unknown flags, a
  /// valueful flag with no value (end of argv or followed by another
  /// `--flag`), or a typed flag whose value fails validation (trailing
  /// garbage, NaN/Inf, not a boolean literal); `--help` sets
  /// help_requested().
  bool parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_; }
  const std::string& error() const noexcept { return error_; }

  /// Typed access; the flag must have been declared. The numeric accessors
  /// re-validate strictly — full-string consumption, finite values, no
  /// sign for seeds — and throw std::invalid_argument naming the flag on
  /// malformed values (reachable only through malformed *defaults* when
  /// parse() ran, since parse() validates user input first).
  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  std::uint64_t get_seed(const std::string& name) const;

  /// Unsigned accessor for count-like flags (ports, queue depths, timeout
  /// milliseconds). Rejects signs, fractions, trailing garbage and
  /// overflow — `--port -1` must be an error, never a 2^64-1 wraparound —
  /// and optionally enforces an inclusive upper bound (e.g. 65535 for a
  /// port). Throws std::invalid_argument naming the flag.
  std::uint64_t get_uint(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name, std::uint64_t max) const;

  /// True if the user explicitly supplied the flag.
  bool was_set(const std::string& name) const;

  /// Formatted flag table for --help output.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string description;
    FlagType type = FlagType::kString;
    bool set = false;
  };
  const Flag& flag_of(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  bool help_ = false;
  std::string error_;
};

}  // namespace solsched::util
