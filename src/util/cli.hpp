// Minimal command-line flag parsing for the examples and benches.
//
// Flags are of the form `--name value` or `--name=value`; `--name` alone is
// a boolean. Unknown flags are an error so typos don't silently fall back
// to defaults mid-experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace solsched::util {

/// Parsed command line with typed accessors and a generated usage string.
class Cli {
 public:
  /// Declares a flag before parsing. `description` feeds usage().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& description);

  /// Parses argv. Returns false (and fills error()) on unknown flags or a
  /// missing value; `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  bool help_requested() const noexcept { return help_; }
  const std::string& error() const noexcept { return error_; }

  /// Typed access; the flag must have been declared.
  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  std::uint64_t get_seed(const std::string& name) const;

  /// True if the user explicitly supplied the flag.
  bool was_set(const std::string& name) const;

  /// Formatted flag table for --help output.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string description;
    bool set = false;
  };
  std::map<std::string, Flag> flags_;
  bool help_ = false;
  std::string error_;
};

}  // namespace solsched::util
