// Campaign aggregates: the reporting side of DESIGN.md §13.
//
// Aggregates are a pure function of the journal records sorted by shard
// index — no timestamps, hostnames or thread counts — so two campaigns
// that journaled the same shards render byte-identical reports regardless
// of how execution was split across processes or workers. aggregate_json's
// byte stability is load-bearing: tier1.sh compares a killed+resumed
// campaign to an uninterrupted one with cmp(1).
#pragma once

#include <string>
#include <vector>

#include "campaign/journal.hpp"

namespace solsched::campaign {

/// Loads a journal for reporting (spec-digest check skipped). Throws
/// std::runtime_error on unreadable or malformed journals.
std::vector<ShardRecord> load_journal_records(const std::string& path);

/// Summary statistics of one metric across one group of shards.
struct MetricSummary {
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

/// Per-algorithm aggregate within one group (overall / per axis value).
struct AlgoAggregate {
  std::string algo;
  std::size_t n = 0;              ///< Shards contributing rows.
  MetricSummary dmr;
  MetricSummary energy_utilization;
  std::uint64_t brownouts = 0;    ///< Total across the group.
  std::uint64_t power_failure_slots = 0;
  std::uint64_t fallbacks = 0;
};

/// One row group: "all", "workload=wam", "intensity=0.5", ...
struct GroupAggregate {
  std::string group;
  std::vector<AlgoAggregate> algos;  ///< First-appearance order.
};

/// Aggregates records (must be sorted by shard — Journal::load and
/// run_campaign both guarantee this) into overall, per-workload and
/// per-intensity groups.
std::vector<GroupAggregate> aggregate(const std::vector<ShardRecord>& records);

/// Human-readable aggregate table.
std::string aggregate_table(const std::vector<ShardRecord>& records);

/// Deterministic JSON rendering (fixed key order, %.17g doubles):
/// byte-identical for equal record sets.
std::string aggregate_json(const std::vector<ShardRecord>& records);

}  // namespace solsched::campaign
