#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <stdexcept>

#include "ann/dbn.hpp"
#include "campaign/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "obs/analysis/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace solsched::campaign {
namespace {

/// Offline pipeline knobs derived from the spec. Shared between training
/// and the Optimal comparison row so the period-option caches agree.
core::PipelineConfig pipeline_config(const CampaignSpec& spec) {
  core::PipelineConfig config;
  config.n_caps = spec.n_caps;
  if (spec.dp_buckets > 0) config.dp.energy_buckets = spec.dp_buckets;
  if (spec.pretrain_epochs > 0)
    config.dbn.pretrain.epochs = spec.pretrain_epochs;
  if (spec.finetune_epochs > 0)
    config.dbn.finetune.epochs = spec.finetune_epochs;
  return config;
}

/// Content address of the offline artifact a workload's scenarios share:
/// the PR-4 NodeConfig digest (grid + physics) extended with the workload
/// and every knob the trained controller depends on. Scenarios that differ
/// only in evaluation axes (seed, intensity, schedulers) collide here by
/// construction — that collision *is* the dedup.
std::uint64_t artifact_key_of(const CampaignSpec& spec,
                              const nvp::NodeConfig& node,
                              const std::string& workload) {
  char node_digest[32];
  std::snprintf(node_digest, sizeof(node_digest), "%016llx",
                static_cast<unsigned long long>(
                    obs::analysis::node_config_digest(node)));
  std::string canon = "solsched-artifact-v1;";
  canon += "node=" + std::string(node_digest) + ";";
  canon += "workload=" + workload + ";";
  canon += "train_seed=" + std::to_string(spec.train_seed) + ";";
  canon += "train_days=" + std::to_string(spec.train_days) + ";";
  canon += "n_caps=" + std::to_string(spec.n_caps) + ";";
  canon += "dp_buckets=" + std::to_string(spec.dp_buckets) + ";";
  canon += "pretrain_epochs=" + std::to_string(spec.pretrain_epochs) + ";";
  canon += "finetune_epochs=" + std::to_string(spec.finetune_epochs);
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : canon) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

ShardRow row_from(const core::ComparisonRow& row) {
  ShardRow out;
  out.algo = row.algo;
  out.dmr = row.dmr;
  out.energy_utilization = row.energy_utilization;
  out.migration_efficiency = row.migration_efficiency;
  out.brownouts = row.brownouts;
  out.solar_j = row.sim.total_solar_j();
  out.served_j = row.sim.total_served_j();
  out.loss_j = row.sim.total_loss_j();
  out.power_failure_slots = row.sim.total_power_failure_slots();
  out.fallbacks = row.sim.total_fallbacks();
  return out;
}

/// One trained (or cache-loaded) controller plus its provenance.
struct Artifact {
  std::uint64_t key = 0;
  bool disk_hit = false;
  std::uint64_t fingerprint = 0;
  std::shared_ptr<core::TrainedController> controller;
};

/// Decision fingerprint of a trained controller: a deterministic probe
/// batch (util::Rng seeded from the artifact key) is mapped into raw input
/// space through the normalizer's inverse, normalized back, and pushed
/// through Dbn::predict_batch in one batched pass; the outputs' bit
/// patterns are FNV-1a folded. The value is bit-identical across SIMD and
/// scalar builds (kernel-layer contract) and across cache-hit and freshly
/// trained artifacts, so journals from different builds of the same spec
/// can be diffed on it directly.
std::uint64_t fingerprint_controller(const core::TrainedController& tc,
                                     std::uint64_t key) {
  const sched::ProposedModel& model = tc.model;
  if (!model.dbn) return 0;
  constexpr std::size_t kProbes = 32;
  const std::size_t d = model.dbn->n_inputs();
  util::Rng rng(key ^ 0xC0FFEE5EEDULL);
  std::vector<ann::Vector> batch;
  batch.reserve(kProbes);
  for (std::size_t s = 0; s < kProbes; ++s) {
    ann::Vector u(d);
    for (double& v : u) v = rng.uniform();
    if (model.input_norm.fitted())
      u = model.input_norm.transform(model.input_norm.inverse(u));
    batch.push_back(std::move(u));
  }
  const std::vector<ann::Vector> outs = model.dbn->predict_batch(batch);
  std::uint64_t h = 14695981039346656037ULL;
  for (const ann::Vector& y : outs)
    for (double v : y) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      for (std::size_t byte = 0; byte < sizeof(bits); ++byte) {
        h ^= (bits >> (8 * byte)) & 0xFFu;
        h *= 1099511628211ULL;
      }
    }
  return h;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  OBS_SPAN("campaign.run");
  const CampaignSpec& spec = config.spec;
  if (config.dir.empty())
    throw std::invalid_argument("run_campaign: empty campaign directory");

  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec)
    throw std::runtime_error("run_campaign: cannot create " + config.dir +
                             ": " + ec.message());

  const std::string journal_path = config.dir + "/journal.jsonl";
  const std::uint64_t spec_digest = spec.digest();

  CampaignResult result;
  const std::vector<Scenario> scenarios = spec.expand();
  result.total_shards = scenarios.size();
  OBS_GAUGE_SET("campaign.shards.total", scenarios.size());

  // ---- Recovery: completed shards are whatever the journal acknowledges. --
  std::set<std::size_t> done;
  if (std::filesystem::exists(journal_path)) {
    Journal::Recovered recovered = Journal::load(journal_path, spec_digest);
    for (const ShardRecord& rec : recovered.records) {
      if (rec.shard >= scenarios.size())
        throw std::runtime_error("run_campaign: journal shard " +
                                 std::to_string(rec.shard) +
                                 " outside the grid");
      done.insert(rec.shard);
    }
    result.records = std::move(recovered.records);
  }
  result.resumed = done.size();
  OBS_COUNTER_ADD("campaign.shards.resumed", result.resumed);

  std::vector<Scenario> remaining;
  for (const Scenario& s : scenarios)
    if (done.find(s.shard) == done.end()) remaining.push_back(s);

  Journal journal(journal_path, spec_digest);

  nvp::NodeConfig node;
  node.grid = spec.grid(1);

  // ---- Live telemetry (DESIGN.md §15). -----------------------------------
  // The bus exists only when observability is on, so with SOLSCHED_OBS
  // unset every publish site below is a single null-pointer branch and the
  // journal/aggregate bytes cannot depend on the telemetry layer.
  std::unique_ptr<obs::TelemetryBus> bus;
  std::string node_digest_hex;
  if (obs::enabled()) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(spec_digest));
    obs::TelemetryBus::Options opt;
    opt.dir = config.dir;
    opt.spec_digest = digest;
    opt.heartbeat_ms = config.telemetry_heartbeat_ms;
    opt.stall_ms = config.telemetry_stall_ms;
    opt.threads = util::ThreadPool::global().size();
    bus = std::make_unique<obs::TelemetryBus>(std::move(opt));
    std::map<std::string, std::size_t> workload_total;
    std::map<std::string, std::size_t> workload_done;
    for (const Scenario& s : scenarios) {
      ++workload_total[s.workload];
      workload_done.emplace(s.workload, 0);
      if (done.find(s.shard) != done.end()) ++workload_done[s.workload];
    }
    bus->campaign_start(scenarios.size(), workload_total, workload_done);
    char nd[32];
    std::snprintf(nd, sizeof(nd), "%016llx",
                  static_cast<unsigned long long>(
                      obs::analysis::node_config_digest(node)));
    node_digest_hex = nd;
  }

  // ---- Offline artifacts: one per workload, content-addressed. -----------
  // Trained serially (train_pipeline parallelizes internally; an outer
  // parallel loop would only serialize it again) and normalized through the
  // serialize/deserialize round trip even on the train path, so a scenario's
  // rows never depend on whether its controller came from cache or from
  // this process (see artifact_cache.hpp).
  // Train only when the axis lists a policy that actually needs a
  // controller (registry metadata, not a hard-coded name check).
  const bool needs_controller = std::any_of(
      spec.schedulers.begin(), spec.schedulers.end(),
      [](const std::string& id) {
        return sched::Registry::global().at(id).needs_controller;
      });
  std::map<std::string, Artifact> artifacts;
  if (needs_controller && !remaining.empty()) {
    OBS_SPAN("campaign.train");
    ArtifactCache cache(config.cache_dir.empty() ? config.dir + "/cache"
                                                 : config.cache_dir);
    const core::PipelineConfig pcfg = pipeline_config(spec);
    std::set<std::string> needed;
    for (const Scenario& s : remaining) needed.insert(s.workload);
    for (const std::string& workload : needed) {
      Artifact artifact;
      artifact.key = artifact_key_of(spec, node, workload);
      auto controller = std::make_shared<core::TrainedController>();
      if (cache.load(artifact.key, controller.get())) {
        artifact.disk_hit = true;
        OBS_COUNTER_ADD("campaign.artifact_cache.disk_hits", 1);
        if (bus) bus->train_cache_hit(workload);
      } else {
        OBS_COUNTER_ADD("campaign.artifact_cache.disk_misses", 1);
        if (bus) bus->train_start(workload);
        const task::TaskGraph graph = CampaignSpec::workload_graph(workload);
        const solar::SolarTrace training =
            spec.generator(spec.train_seed)
                .generate_days(spec.train_days, spec.grid(1),
                               solar::DayKind::kPartlyCloudy);
        cache.store(artifact.key,
                    core::train_pipeline(graph, training, node, pcfg));
        ++result.trainings;
        OBS_COUNTER_ADD("campaign.train.runs", 1);
        if (!cache.load(artifact.key, controller.get()))
          throw std::runtime_error(
              "run_campaign: freshly stored artifact unreadable: " +
              cache.path_of(artifact.key));
      }
      artifact.controller = std::move(controller);
      artifact.fingerprint =
          fingerprint_controller(*artifact.controller, artifact.key);
      artifacts.emplace(workload, std::move(artifact));
    }
    result.artifact_disk_hits =
        static_cast<std::size_t>(std::count_if(
            artifacts.begin(), artifacts.end(),
            [](const auto& kv) { return kv.second.disk_hit; }));
  }

  // ---- Shard execution: dynamic claiming over the pool. ------------------
  const fault::FaultPlan base_plan = spec.fault_plan();
  core::ComparisonConfig cmp_template;
  cmp_template.scheduler_ids = spec.schedulers;
  cmp_template.dp = pipeline_config(spec).dp;

  std::vector<ShardRecord> fresh(remaining.size());
  std::vector<char> executed(remaining.size(), 0);
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> stop{false};

  util::parallel_for(remaining.size(), [&](std::size_t i) {
    if (stop.load(std::memory_order_relaxed)) return;
    OBS_SPAN("campaign.shard");
    const Scenario& scenario = remaining[i];
    if (bus)
      bus->shard_claimed(scenario.shard, scenario.workload, node_digest_hex);
    const task::TaskGraph graph =
        CampaignSpec::workload_graph(scenario.workload);
    const solar::SolarTrace trace =
        spec.generator(scenario.seed)
            .generate_days(spec.eval_days, spec.grid(1), spec.eval_day0);

    const fault::FaultPlan plan = base_plan.scaled(scenario.intensity);
    std::unique_ptr<fault::FaultInjector> injector;
    if (plan.any())
      injector = std::make_unique<fault::FaultInjector>(plan, trace.grid());

    core::ComparisonConfig cmp = cmp_template;
    cmp.faults = injector.get();
    const core::TrainedController* trained = nullptr;
    ShardRecord record;
    const auto artifact = artifacts.find(scenario.workload);
    if (artifact != artifacts.end()) {
      trained = artifact->second.controller.get();
      record.artifact_key = artifact->second.key;
      record.artifact_hit = artifact->second.disk_hit;
      record.controller_fingerprint = artifact->second.fingerprint;
    }

    if (bus) bus->sim_start(scenario.shard);
    if (config.shard_hook) config.shard_hook(scenario.shard);

    std::vector<core::ComparisonRow> rows;
    try {
      rows = core::run_comparison(graph, trace, node, trained, cmp);
    } catch (const std::exception& e) {
      if (bus) bus->shard_failed(scenario.shard, e.what());
      throw;
    }

    record.shard = scenario.shard;
    record.key = scenario.key();
    record.workload = scenario.workload;
    record.seed = scenario.seed;
    record.intensity = scenario.intensity;
    for (const core::ComparisonRow& row : rows)
      record.rows.push_back(row_from(row));

    journal.append(record);
    OBS_COUNTER_ADD("campaign.journal.appends", 1);
    OBS_COUNTER_ADD("campaign.shards.executed", 1);
    if (record.artifact_hit) OBS_COUNTER_ADD("campaign.artifact_cache.hits", 1);
    if (bus) bus->shard_done(scenario.shard, record.artifact_hit);
    fresh[i] = std::move(record);
    executed[i] = 1;
    const std::size_t n = completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    // A mid-flight kill, deterministically: shards already in flight finish
    // and journal (exactly as real in-flight work may), nothing new starts.
    if (config.stop_after > 0 && n >= config.stop_after)
      stop.store(true, std::memory_order_relaxed);
  });

  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (!executed[i]) continue;
    ++result.executed;
    if (fresh[i].artifact_hit) ++result.artifact_hits;
    result.records.push_back(std::move(fresh[i]));
  }
  std::sort(result.records.begin(), result.records.end(),
            [](const ShardRecord& a, const ShardRecord& b) {
              return a.shard < b.shard;
            });
  result.finished = result.records.size() == result.total_shards;
  if (bus) bus->campaign_finish(result.finished);
  return result;
}

}  // namespace solsched::campaign
