// Crash-safe campaign journal: the per-campaign result store (DESIGN.md §13).
//
// One JSONL file per campaign. Line 1 is a header binding the journal to a
// spec digest; every later line is one completed shard's record, appended
// under a mutex and fsync'd before append() returns — once a shard is
// acknowledged it survives a kill at any instant. Recovery is tolerant of
// exactly the damage a crash can cause (a truncated final line) and strict
// about everything else: a header/spec mismatch or garbage in the middle of
// the file is an error, not something to silently skip.
//
// Doubles are rendered with %.17g and re-read by the strict json_mini
// parser, an exact round trip — so aggregates computed from re-loaded
// records are bit-identical to aggregates computed from the in-memory
// records that produced them. That equivalence is what makes
// "interrupted + resumed == uninterrupted" hold to the last bit.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace solsched::campaign {

/// One policy row of one scenario, as journaled.
struct ShardRow {
  std::string algo;
  double dmr = 0.0;
  double energy_utilization = 0.0;
  double migration_efficiency = 0.0;
  std::uint64_t brownouts = 0;
  double solar_j = 0.0;
  double served_j = 0.0;
  double loss_j = 0.0;
  std::uint64_t power_failure_slots = 0;
  std::uint64_t fallbacks = 0;
};

/// One completed scenario.
struct ShardRecord {
  std::size_t shard = 0;
  std::string key;                 ///< Scenario::key().
  std::string workload;
  std::uint64_t seed = 0;
  double intensity = 0.0;
  std::uint64_t artifact_key = 0;  ///< Offline-config digest; 0 = untrained.
  bool artifact_hit = false;       ///< Served from the on-disk cache.
  /// FNV-1a over the bit patterns of a deterministic probe batch pushed
  /// through Dbn::predict_batch — the controller's decision fingerprint.
  /// Identical across SIMD and scalar builds (the kernel layer's
  /// bit-exactness contract); 0 when the shard ran without a trained
  /// controller. Absent in pre-fingerprint journals (parses as 0).
  std::uint64_t controller_fingerprint = 0;
  std::vector<ShardRow> rows;

  /// One JSON line (no trailing newline), %.17g doubles.
  std::string to_json() const;
};

/// Append-only journal with fsync'd writes and crash-tolerant recovery.
class Journal {
 public:
  struct Recovered {
    std::vector<ShardRecord> records;  ///< Sorted by shard index.
    std::size_t dropped_partial = 0;   ///< 1 when a truncated tail was cut.
  };

  /// Parses an existing journal. `expected_spec_digest` must match the
  /// header (pass 0 to skip the check, e.g. for report-only consumers).
  /// A truncated final line is dropped and counted; any other malformation
  /// (bad header, garbage mid-file, duplicate shard ids) throws
  /// std::runtime_error. Throws on unreadable files too; use
  /// std::filesystem::exists to probe first.
  static Recovered load(const std::string& path,
                        std::uint64_t expected_spec_digest);

  /// Opens `path` for appending, first truncating any crash-torn partial
  /// final line (bytes past the last '\n') so new records never glue onto
  /// it, then writing (and fsync'ing) the header line when the file is new
  /// or empty. Throws std::runtime_error on I/O error.
  Journal(const std::string& path, std::uint64_t spec_digest);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record and fsyncs. Safe to call from pool workers.
  void append(const ShardRecord& record);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace solsched::campaign
