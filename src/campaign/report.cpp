#include "campaign/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/analysis/json_mini.hpp"
#include "util/stats.hpp"

namespace solsched::campaign {
namespace {

std::string render_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string render_fixed(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

/// Nearest-rank quantile over a sorted sample; the index rule lives in
/// util::nearest_rank_index (integer arithmetic only — no floating-point
/// index math to go platform-shaped) and is shared with core::metrics_report.
double quantile(const std::vector<double>& sorted, std::size_t percent) {
  if (sorted.empty()) return 0.0;
  return sorted[util::nearest_rank_index(sorted.size(), percent)];
}

MetricSummary summarize(std::vector<double> values) {
  MetricSummary out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;  // Shard order: deterministic.
  out.mean = sum / static_cast<double>(values.size());
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  out.p50 = quantile(values, 50);
  out.p90 = quantile(values, 90);
  return out;
}

/// Accumulates per-algo samples for one group, preserving first-appearance
/// algo order (the ComparisonRow declaration order of the first shard).
struct GroupBuilder {
  std::string group;
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> dmr;
  std::map<std::string, std::vector<double>> util;
  std::map<std::string, std::uint64_t> brownouts;
  std::map<std::string, std::uint64_t> pf_slots;
  std::map<std::string, std::uint64_t> fallbacks;

  void add(const ShardRecord& record) {
    for (const ShardRow& row : record.rows) {
      if (dmr.find(row.algo) == dmr.end()) order.push_back(row.algo);
      dmr[row.algo].push_back(row.dmr);
      util[row.algo].push_back(row.energy_utilization);
      brownouts[row.algo] += row.brownouts;
      pf_slots[row.algo] += row.power_failure_slots;
      fallbacks[row.algo] += row.fallbacks;
    }
  }

  GroupAggregate build() const {
    GroupAggregate out;
    out.group = group;
    for (const std::string& algo : order) {
      AlgoAggregate agg;
      agg.algo = algo;
      agg.n = dmr.at(algo).size();
      agg.dmr = summarize(dmr.at(algo));
      agg.energy_utilization = summarize(util.at(algo));
      agg.brownouts = brownouts.at(algo);
      agg.power_failure_slots = pf_slots.at(algo);
      agg.fallbacks = fallbacks.at(algo);
      out.algos.push_back(std::move(agg));
    }
    return out;
  }
};

std::string summary_json(const MetricSummary& s) {
  std::string out = "{\"mean\": " + render_double(s.mean);
  out += ", \"min\": " + render_double(s.min);
  out += ", \"p50\": " + render_double(s.p50);
  out += ", \"p90\": " + render_double(s.p90);
  out += ", \"max\": " + render_double(s.max);
  out += "}";
  return out;
}

}  // namespace

std::vector<ShardRecord> load_journal_records(const std::string& path) {
  return Journal::load(path, 0).records;
}

std::vector<GroupAggregate> aggregate(const std::vector<ShardRecord>& records) {
  GroupBuilder all;
  all.group = "all";
  std::vector<std::string> workload_order;
  std::map<std::string, GroupBuilder> by_workload;
  std::vector<std::string> intensity_order;
  std::map<std::string, GroupBuilder> by_intensity;

  for (const ShardRecord& record : records) {
    all.add(record);
    const std::string wkey = "workload=" + record.workload;
    if (by_workload.find(wkey) == by_workload.end()) {
      workload_order.push_back(wkey);
      by_workload[wkey].group = wkey;
    }
    by_workload[wkey].add(record);
    const std::string ikey = "intensity=" + render_double(record.intensity);
    if (by_intensity.find(ikey) == by_intensity.end()) {
      intensity_order.push_back(ikey);
      by_intensity[ikey].group = ikey;
    }
    by_intensity[ikey].add(record);
  }

  std::vector<GroupAggregate> out;
  out.push_back(all.build());
  for (const std::string& key : workload_order)
    if (by_workload.size() > 1) out.push_back(by_workload.at(key).build());
  for (const std::string& key : intensity_order)
    if (by_intensity.size() > 1) out.push_back(by_intensity.at(key).build());
  return out;
}

std::string aggregate_table(const std::vector<ShardRecord>& records) {
  const std::vector<GroupAggregate> groups = aggregate(records);
  std::string out =
      "campaign aggregate (" + std::to_string(records.size()) + " shards)\n";
  for (const GroupAggregate& group : groups) {
    out += "\n[" + group.group + "]\n";
    char head[160];
    std::snprintf(head, sizeof(head), "  %-10s %4s %8s %8s %8s %8s %8s %8s\n",
                  "algo", "n", "dmr.mean", "dmr.p50", "dmr.p90", "dmr.max",
                  "util", "brownout");
    out += head;
    for (const AlgoAggregate& algo : group.algos) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-10s %4zu %8s %8s %8s %8s %8s %8llu\n",
                    algo.algo.c_str(), algo.n,
                    render_fixed(algo.dmr.mean).c_str(),
                    render_fixed(algo.dmr.p50).c_str(),
                    render_fixed(algo.dmr.p90).c_str(),
                    render_fixed(algo.dmr.max).c_str(),
                    render_fixed(algo.energy_utilization.mean).c_str(),
                    static_cast<unsigned long long>(algo.brownouts));
      out += line;
    }
  }
  return out;
}

std::string aggregate_json(const std::vector<ShardRecord>& records) {
  using obs::analysis::json_escape;
  const std::vector<GroupAggregate> groups = aggregate(records);
  std::string out = "{\n  \"aggregate\": \"solsched-campaign-aggregate-v1\",\n";
  out += "  \"shards\": " + std::to_string(records.size()) + ",\n";
  out += "  \"groups\": [";
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const GroupAggregate& group = groups[g];
    out += g == 0 ? "\n" : ",\n";
    out += "    {\"group\": \"" + json_escape(group.group) +
           "\", \"algos\": [";
    for (std::size_t a = 0; a < group.algos.size(); ++a) {
      const AlgoAggregate& algo = group.algos[a];
      out += a == 0 ? "\n" : ",\n";
      out += "      {\"algo\": \"" + json_escape(algo.algo) + "\"";
      out += ", \"n\": " + std::to_string(algo.n);
      out += ", \"dmr\": " + summary_json(algo.dmr);
      out += ", \"energy_utilization\": " +
             summary_json(algo.energy_utilization);
      out += ", \"brownouts\": " + std::to_string(algo.brownouts);
      out += ", \"power_failure_slots\": " +
             std::to_string(algo.power_failure_slots);
      out += ", \"fallbacks\": " + std::to_string(algo.fallbacks);
      out += "}";
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace solsched::campaign
