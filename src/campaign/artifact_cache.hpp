// Content-addressed on-disk cache of expensive offline artifacts.
//
// Scenarios that share an offline configuration (same workload, training
// climate, node physics and pipeline knobs) must train the controller once,
// not once per scenario — in the paper's grids the offline pipeline is by
// far the dominant cost. The cache key is a 64-bit FNV-1a digest built from
// the PR-4 NodeConfig digest plus the workload and every training knob; the
// value is the core::serialize_controller bundle, written atomically
// (tmp + fsync + rename) so a crash mid-store never leaves a readable
// half-artifact.
//
// Determinism note: the campaign runner uses the *deserialized* controller
// even right after training one (store then load back). The serialized
// bundle drops offline-only diagnostics (LUT, sizing table, option cache),
// so normalizing both the hit and the miss path through the same round trip
// makes every scenario's rows bit-identical regardless of whether its
// artifact was cached — the property the crash/resume contract rests on.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"

namespace solsched::campaign {

class ArtifactCache {
 public:
  /// Binds the cache to `dir`, creating it (and parents) if needed.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit ArtifactCache(std::string dir);

  /// Loads the controller stored under `key` into `*out`. Returns false on
  /// a miss; an unreadable or corrupt entry also counts as a miss (the
  /// caller retrains and overwrites), with a one-line stderr warning.
  bool load(std::uint64_t key, core::TrainedController* out) const;

  /// Atomically stores `controller` under `key` (tmp file, fsync, rename).
  /// Throws std::runtime_error on I/O failure.
  void store(std::uint64_t key, const core::TrainedController& controller) const;

  /// The entry path for `key`: <dir>/<016x-hex>.controller.
  std::string path_of(std::uint64_t key) const;

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string dir_;
};

}  // namespace solsched::campaign
