// Campaign specification: the scenario grid of a batch sweep (DESIGN.md §13).
//
// The paper's evaluation is a grid — sites × seasons × workloads × capacitor
// banks (Fig. 7-10) — and a CampaignSpec describes one such grid compactly:
// axes (workloads, evaluation-trace seeds, fault intensities) plus the knobs
// shared by every cell (time grid, training climate, pipeline size, policy
// rows). expand() flattens the axes into a deterministic shard list; the
// shard index is the scenario's stable identity across runs, threads and
// resumes, so a journal written by one execution is meaningful to any other
// execution of the same spec (enforced via digest()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "solar/irradiance.hpp"
#include "solar/time_grid.hpp"
#include "solar/trace_generator.hpp"
#include "task/task_graph.hpp"

namespace solsched::campaign {

/// One cell of the scenario grid. The shard index is its position in the
/// expansion order (workload-major, then seed, then intensity).
struct Scenario {
  std::size_t shard = 0;
  std::string workload;
  std::uint64_t seed = 0;     ///< Evaluation-trace seed ("site").
  double intensity = 0.0;     ///< Fault-plan scale factor.

  /// Stable human-readable identity, e.g. "wam/s3/i0.5".
  std::string key() const;
};

/// The full grid description. Parseable from a `key=value;key=value` spec
/// string (lists comma-separated, integer ranges as `a..b`); see parse().
struct CampaignSpec {
  // -- axes ----------------------------------------------------------------
  std::vector<std::string> workloads = {"wam"};  ///< wam|ecg|shm|rand1..3.
  std::vector<std::uint64_t> seeds = {1};        ///< Evaluation-trace seeds.
  std::vector<double> intensities = {0.0};       ///< Fault scale per cell.

  // -- shared knobs --------------------------------------------------------
  std::string fault_spec;       ///< fault::FaultPlan::parse input; "" = none.
  std::size_t eval_days = 1;    ///< Evaluation-trace length per scenario.
  solar::DayKind eval_day0 = solar::DayKind::kClear;  ///< First eval day.
  std::size_t train_days = 2;   ///< Training-climate length (per workload).
  std::uint64_t train_seed = 2015;
  std::size_t n_caps = 4;       ///< Capacitors sized by the pipeline.
  std::size_t periods = 144;    ///< Grid: periods per day.
  std::size_t slots = 20;       ///< Grid: slots per period.
  double dt_s = 30.0;           ///< Grid: slot length.
  std::size_t dp_buckets = 0;       ///< 0 = OptimalConfig default.
  std::size_t pretrain_epochs = 0;  ///< 0 = RbmTrainConfig default.
  std::size_t finetune_epochs = 0;  ///< 0 = MlpTrainConfig default.
  /// Policy rows per scenario: any canonical sched::Registry id (the
  /// validation list is derived from the registry, so every registered
  /// policy — including the energy-aware zoo — is a valid axis value).
  /// The offline pipeline runs (once per workload) only when a policy
  /// that needs a trained controller is listed; without one every row
  /// uses the node's default bank.
  std::vector<std::string> schedulers = {"inter", "intra", "proposed",
                                         "optimal"};

  /// Parses a spec string: `;`-separated key=value entries. Keys:
  ///   workloads, seeds, intensities, schedulers   (comma-separated lists;
  ///     seeds also accept a..b ranges)
  ///   fault          (a fault::FaultPlan spec — commas stay inside)
  ///   days, day0 (clear|partly|overcast|rainy), train_days, train_seed,
  ///   n_caps, periods, slots, dt, dp_buckets, pretrain_epochs,
  ///   finetune_epochs
  /// Throws std::invalid_argument on unknown keys, malformed values, empty
  /// axes or unknown workload/scheduler/day names.
  static CampaignSpec parse(const std::string& text);

  /// Stable re-rendering of every field in a fixed order; equal specs (after
  /// parse-level normalization) render identically.
  std::string canonical() const;

  /// FNV-1a digest of canonical(): the journal compatibility check.
  std::uint64_t digest() const;

  /// Axes flattened in deterministic order; shard i is expand()[i].
  std::vector<Scenario> expand() const;

  /// The simulation grid for `n_days` days.
  solar::TimeGrid grid(std::size_t n_days) const;

  /// Seeded generator whose clear-sky window is scaled to the (possibly
  /// shrunk) day of grid(): sunrise at 25%, sunset at 75% of the day, the
  /// test-helper convention, so tiny-grid campaigns still see a dawn/noon/
  /// night structure.
  solar::TraceGenerator generator(std::uint64_t seed) const;

  /// The base fault plan (parsed fault_spec); inactive when fault_spec is
  /// empty.
  fault::FaultPlan fault_plan() const;

  /// Resolves a workload axis value to its task graph.
  static task::TaskGraph workload_graph(const std::string& name);

  /// True when `name` appears on the schedulers axis.
  bool has_scheduler(const std::string& name) const;
};

}  // namespace solsched::campaign
