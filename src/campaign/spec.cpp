#include "campaign/spec.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sched/registry.hpp"
#include "task/benchmarks.hpp"

namespace solsched::campaign {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("CampaignSpec: " + what);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::uint64_t parse_u64(const std::string& text, const std::string& key) {
  if (text.empty()) fail("key " + key + ": empty integer");
  for (char c : text)
    if (c < '0' || c > '9')
      fail("key " + key + ": invalid integer \"" + text + "\"");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE)
    fail("key " + key + ": invalid integer \"" + text + "\"");
  return static_cast<std::uint64_t>(value);
}

double parse_double(const std::string& text, const std::string& key) {
  if (text.empty()) fail("key " + key + ": empty number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(value))
    fail("key " + key + ": invalid number \"" + text + "\"");
  return value;
}

/// Comma-separated u64 list; each element may be a single value or `a..b`
/// (inclusive, ascending).
std::vector<std::uint64_t> parse_u64_list(const std::string& text,
                                          const std::string& key) {
  std::vector<std::uint64_t> out;
  for (const std::string& part : split(text, ',')) {
    const std::size_t dots = part.find("..");
    if (dots == std::string::npos) {
      out.push_back(parse_u64(part, key));
      continue;
    }
    const std::uint64_t lo = parse_u64(part.substr(0, dots), key);
    const std::uint64_t hi = parse_u64(part.substr(dots + 2), key);
    if (hi < lo) fail("key " + key + ": descending range \"" + part + "\"");
    if (hi - lo >= 1u << 20)
      fail("key " + key + ": range \"" + part + "\" too large");
    for (std::uint64_t v = lo; v <= hi; ++v) out.push_back(v);
  }
  if (out.empty()) fail("key " + key + ": empty list");
  return out;
}

std::vector<double> parse_double_list(const std::string& text,
                                      const std::string& key) {
  std::vector<double> out;
  for (const std::string& part : split(text, ','))
    out.push_back(parse_double(part, key));
  if (out.empty()) fail("key " + key + ": empty list");
  return out;
}

const std::vector<std::string> kWorkloads = {"wam",   "ecg",   "shm",
                                             "rand1", "rand2", "rand3"};

/// The scheduler axis vocabulary is the registry's: every registered
/// policy is a valid axis value, and nothing else — the list can never
/// drift from what run_comparison can actually build.
const std::vector<std::string>& scheduler_ids() {
  static const std::vector<std::string> ids = sched::Registry::global().ids();
  return ids;
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::vector<std::string> parse_name_list(const std::string& text,
                                         const std::string& key,
                                         const std::vector<std::string>& known) {
  std::vector<std::string> out;
  for (const std::string& part : split(text, ',')) {
    if (std::find(known.begin(), known.end(), part) == known.end())
      fail("key " + key + ": unknown name \"" + part +
           "\" (known: " + join(known) + ")");
    if (std::find(out.begin(), out.end(), part) != out.end())
      fail("key " + key + ": duplicate \"" + part + "\"");
    out.push_back(part);
  }
  if (out.empty()) fail("key " + key + ": empty list");
  return out;
}

solar::DayKind parse_day_kind(const std::string& text) {
  if (text == "clear") return solar::DayKind::kClear;
  if (text == "partly") return solar::DayKind::kPartlyCloudy;
  if (text == "overcast") return solar::DayKind::kOvercast;
  if (text == "rainy") return solar::DayKind::kRainy;
  fail("key day0: unknown day kind \"" + text +
       "\" (clear|partly|overcast|rainy)");
}

const char* day_kind_name(solar::DayKind kind) {
  switch (kind) {
    case solar::DayKind::kClear: return "clear";
    case solar::DayKind::kPartlyCloudy: return "partly";
    case solar::DayKind::kOvercast: return "overcast";
    case solar::DayKind::kRainy: return "rainy";
  }
  // Unreachable for valid enum values. An out-of-range value (memory
  // corruption, a cast gone wrong) must not silently canonicalize as
  // "clear" — that would corrupt spec digests and journal keys.
  throw std::logic_error("CampaignSpec: day_kind_name: invalid DayKind " +
                         std::to_string(static_cast<int>(kind)));
}

std::string render_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::uint64_t fnv1a(const std::string& bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string Scenario::key() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/s%llu/i%g",
                static_cast<unsigned long long>(seed), intensity);
  return workload + buf;
}

CampaignSpec CampaignSpec::parse(const std::string& text) {
  CampaignSpec spec;
  for (const std::string& entry : split(text, ';')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      fail("entry \"" + entry + "\" is not key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "workloads") {
      spec.workloads = parse_name_list(value, key, kWorkloads);
    } else if (key == "seeds") {
      spec.seeds = parse_u64_list(value, key);
    } else if (key == "intensities") {
      spec.intensities = parse_double_list(value, key);
      for (double i : spec.intensities)
        if (i < 0.0) fail("key intensities: negative intensity");
    } else if (key == "schedulers") {
      spec.schedulers = parse_name_list(value, key, scheduler_ids());
    } else if (key == "fault") {
      fault::FaultPlan::parse(value);  // Validate now, fail at parse time.
      spec.fault_spec = value;
    } else if (key == "days") {
      spec.eval_days = static_cast<std::size_t>(parse_u64(value, key));
      if (spec.eval_days == 0) fail("key days: must be >= 1");
    } else if (key == "day0") {
      spec.eval_day0 = parse_day_kind(value);
    } else if (key == "train_days") {
      spec.train_days = static_cast<std::size_t>(parse_u64(value, key));
      if (spec.train_days == 0) fail("key train_days: must be >= 1");
    } else if (key == "train_seed") {
      spec.train_seed = parse_u64(value, key);
    } else if (key == "n_caps") {
      spec.n_caps = static_cast<std::size_t>(parse_u64(value, key));
      if (spec.n_caps == 0) fail("key n_caps: must be >= 1");
    } else if (key == "periods") {
      spec.periods = static_cast<std::size_t>(parse_u64(value, key));
      if (spec.periods == 0) fail("key periods: must be >= 1");
    } else if (key == "slots") {
      spec.slots = static_cast<std::size_t>(parse_u64(value, key));
      if (spec.slots == 0) fail("key slots: must be >= 1");
    } else if (key == "dt") {
      spec.dt_s = parse_double(value, key);
      if (spec.dt_s <= 0.0) fail("key dt: must be > 0");
    } else if (key == "dp_buckets") {
      spec.dp_buckets = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "pretrain_epochs") {
      spec.pretrain_epochs = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "finetune_epochs") {
      spec.finetune_epochs = static_cast<std::size_t>(parse_u64(value, key));
    } else {
      fail("unknown key \"" + key + "\"");
    }
  }
  return spec;
}

std::string CampaignSpec::canonical() const {
  std::string out;
  const auto list = [&out](const char* key, const auto& render,
                           const auto& values) {
    out += key;
    out += '=';
    bool first = true;
    for (const auto& v : values) {
      if (!first) out += ',';
      out += render(v);
      first = false;
    }
    out += ';';
  };
  const auto str = [](const std::string& s) { return s; };
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  list("workloads", str, workloads);
  list("seeds", u64, seeds);
  list("intensities", render_double, intensities);
  list("schedulers", str, schedulers);
  out += "fault=" + fault_spec + ";";
  out += "days=" + std::to_string(eval_days) + ";";
  out += std::string("day0=") + day_kind_name(eval_day0) + ";";
  out += "train_days=" + std::to_string(train_days) + ";";
  out += "train_seed=" + std::to_string(train_seed) + ";";
  out += "n_caps=" + std::to_string(n_caps) + ";";
  out += "periods=" + std::to_string(periods) + ";";
  out += "slots=" + std::to_string(slots) + ";";
  out += "dt=" + render_double(dt_s) + ";";
  out += "dp_buckets=" + std::to_string(dp_buckets) + ";";
  out += "pretrain_epochs=" + std::to_string(pretrain_epochs) + ";";
  out += "finetune_epochs=" + std::to_string(finetune_epochs);
  return out;
}

std::uint64_t CampaignSpec::digest() const { return fnv1a(canonical()); }

std::vector<Scenario> CampaignSpec::expand() const {
  std::vector<Scenario> scenarios;
  scenarios.reserve(workloads.size() * seeds.size() * intensities.size());
  for (const std::string& workload : workloads)
    for (std::uint64_t seed : seeds)
      for (double intensity : intensities) {
        Scenario s;
        s.shard = scenarios.size();
        s.workload = workload;
        s.seed = seed;
        s.intensity = intensity;
        scenarios.push_back(std::move(s));
      }
  return scenarios;
}

solar::TimeGrid CampaignSpec::grid(std::size_t n_days) const {
  return solar::TimeGrid{n_days, periods, slots, dt_s};
}

solar::TraceGenerator CampaignSpec::generator(std::uint64_t seed) const {
  solar::TraceGeneratorConfig config;
  config.seed = seed;
  const double day_s = grid(1).day_s();
  config.clear_sky.sunrise_s = 0.25 * day_s;
  config.clear_sky.sunset_s = 0.75 * day_s;
  return solar::TraceGenerator(config);
}

fault::FaultPlan CampaignSpec::fault_plan() const {
  return fault::FaultPlan::parse(fault_spec);
}

task::TaskGraph CampaignSpec::workload_graph(const std::string& name) {
  if (name == "wam") return task::wam_benchmark();
  if (name == "ecg") return task::ecg_benchmark();
  if (name == "shm") return task::shm_benchmark();
  if (name == "rand1") return task::random_case(1);
  if (name == "rand2") return task::random_case(2);
  if (name == "rand3") return task::random_case(3);
  fail("unknown workload \"" + name + "\"");
}

bool CampaignSpec::has_scheduler(const std::string& name) const {
  return std::find(schedulers.begin(), schedulers.end(), name) !=
         schedulers.end();
}

}  // namespace solsched::campaign
