#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/analysis/json_mini.hpp"

namespace solsched::campaign {
namespace {

constexpr const char* kMagic = "solsched-campaign-journal-v1";

std::string render_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string render_u64(std::uint64_t value) { return std::to_string(value); }

/// Quoted 16-digit hex. Full-width u64 values (hashes, fingerprints) go
/// through strings because a JSON number round-trips via double and loses
/// bits above 2^53.
std::string render_hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016llx\"",
                static_cast<unsigned long long>(value));
  return buf;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("journal " + path + ": " + what);
}

double require_number(const obs::analysis::JsonValue& obj,
                      const std::string& key, const std::string& path) {
  const auto* v = obj.find(key);
  if (v == nullptr || !v->is_number()) fail(path, "missing number \"" + key + "\"");
  return v->number;
}

std::string require_string(const obs::analysis::JsonValue& obj,
                           const std::string& key, const std::string& path) {
  const auto* v = obj.find(key);
  if (v == nullptr || !v->is_string()) fail(path, "missing string \"" + key + "\"");
  return v->string;
}

}  // namespace

std::string ShardRecord::to_json() const {
  using obs::analysis::json_escape;
  std::string out = "{\"shard\": " + std::to_string(shard);
  out += ", \"key\": \"" + json_escape(key) + "\"";
  out += ", \"workload\": \"" + json_escape(workload) + "\"";
  out += ", \"seed\": " + render_u64(seed);
  out += ", \"intensity\": " + render_double(intensity);
  out += ", \"artifact_key\": " + render_u64(artifact_key);
  out += ", \"artifact_hit\": ";
  out += artifact_hit ? "true" : "false";
  out += ", \"controller_fp\": " + render_hex64(controller_fingerprint);
  out += ", \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    if (i > 0) out += ", ";
    out += "{\"algo\": \"" + json_escape(r.algo) + "\"";
    out += ", \"dmr\": " + render_double(r.dmr);
    out += ", \"energy_utilization\": " + render_double(r.energy_utilization);
    out += ", \"migration_efficiency\": " + render_double(r.migration_efficiency);
    out += ", \"brownouts\": " + render_u64(r.brownouts);
    out += ", \"solar_j\": " + render_double(r.solar_j);
    out += ", \"served_j\": " + render_double(r.served_j);
    out += ", \"loss_j\": " + render_double(r.loss_j);
    out += ", \"power_failure_slots\": " + render_u64(r.power_failure_slots);
    out += ", \"fallbacks\": " + render_u64(r.fallbacks);
    out += "}";
  }
  out += "]}";
  return out;
}

Journal::Recovered Journal::load(const std::string& path,
                                 std::uint64_t expected_spec_digest) {
  std::ifstream file(path);
  if (!file) fail(path, "cannot open");
  Recovered out;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  // A crash can only truncate the *last* line (appends are sequential and
  // fsync'd), so a parse failure is forgiven exactly once, at EOF.
  std::vector<std::pair<std::size_t, std::string>> failed;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    obs::analysis::JsonValue doc;
    try {
      doc = obs::analysis::parse_json(line);
    } catch (const std::exception& e) {
      failed.emplace_back(line_no, e.what());
      continue;
    }
    if (!failed.empty())
      fail(path, "malformed line " + std::to_string(failed.front().first) +
                     " before valid line " + std::to_string(line_no) + " (" +
                     failed.front().second + ")");
    if (!doc.is_object()) fail(path, "line " + std::to_string(line_no) +
                                         " is not an object");
    if (!header_seen) {
      if (doc.string_or("journal") != kMagic)
        fail(path, "missing or unknown header (expected \"" +
                       std::string(kMagic) + "\")");
      if (expected_spec_digest != 0) {
        const std::string digest = require_string(doc, "spec_digest", path);
        char expect[32];
        std::snprintf(expect, sizeof(expect), "%016llx",
                      static_cast<unsigned long long>(expected_spec_digest));
        if (digest != expect)
          fail(path, "spec digest mismatch: journal has " + digest +
                         ", campaign spec is " + expect +
                         " (refusing to mix results of different grids)");
      }
      header_seen = true;
      continue;
    }
    ShardRecord rec;
    rec.shard = static_cast<std::size_t>(require_number(doc, "shard", path));
    rec.key = require_string(doc, "key", path);
    rec.workload = require_string(doc, "workload", path);
    rec.seed = static_cast<std::uint64_t>(require_number(doc, "seed", path));
    rec.intensity = require_number(doc, "intensity", path);
    rec.artifact_key =
        static_cast<std::uint64_t>(require_number(doc, "artifact_key", path));
    const auto* hit = doc.find("artifact_hit");
    rec.artifact_hit = hit != nullptr && hit->boolean;
    if (const auto* fp = doc.find("controller_fp");
        fp != nullptr && fp->is_string())
      rec.controller_fingerprint = std::strtoull(fp->string.c_str(), nullptr, 16);
    const auto* rows = doc.find("rows");
    if (rows == nullptr || !rows->is_array())
      fail(path, "line " + std::to_string(line_no) + ": missing rows array");
    for (const auto& row : rows->array) {
      ShardRow r;
      r.algo = require_string(row, "algo", path);
      r.dmr = require_number(row, "dmr", path);
      r.energy_utilization = require_number(row, "energy_utilization", path);
      r.migration_efficiency = require_number(row, "migration_efficiency", path);
      r.brownouts =
          static_cast<std::uint64_t>(require_number(row, "brownouts", path));
      r.solar_j = require_number(row, "solar_j", path);
      r.served_j = require_number(row, "served_j", path);
      r.loss_j = require_number(row, "loss_j", path);
      r.power_failure_slots = static_cast<std::uint64_t>(
          require_number(row, "power_failure_slots", path));
      r.fallbacks =
          static_cast<std::uint64_t>(require_number(row, "fallbacks", path));
      rec.rows.push_back(std::move(r));
    }
    out.records.push_back(std::move(rec));
  }
  if (!header_seen && !failed.empty()) {
    // Even the header can be cut short by a crash between open and fsync.
    out.dropped_partial = failed.size();
    failed.clear();
  }
  if (!failed.empty()) {
    if (failed.size() > 1)
      fail(path, "multiple malformed lines (first at line " +
                     std::to_string(failed.front().first) + ")");
    out.dropped_partial = 1;  // The crash-truncated tail; recoverable.
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const ShardRecord& a, const ShardRecord& b) {
              return a.shard < b.shard;
            });
  for (std::size_t i = 1; i < out.records.size(); ++i)
    if (out.records[i].shard == out.records[i - 1].shard)
      fail(path, "duplicate record for shard " +
                     std::to_string(out.records[i].shard));
  return out;
}

Journal::Journal(const std::string& path, std::uint64_t spec_digest)
    : path_(path) {
  // Heal a crash-torn tail before appending. Every complete record ends in
  // '\n', so bytes after the last newline are a partial line; appending onto
  // them would glue the next record into unparseable mid-file garbage.
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe) {
      std::ostringstream buf;
      buf << probe.rdbuf();
      const std::string bytes = buf.str();
      const std::size_t cut = bytes.find_last_of('\n');
      if (!bytes.empty() && cut != bytes.size() - 1) {
        const off_t keep =
            cut == std::string::npos ? 0 : static_cast<off_t>(cut + 1);
        if (::truncate(path.c_str(), keep) != 0)
          fail(path, "cannot truncate torn tail");
      }
    }
  }
  const bool fresh = [&] {
    std::ifstream probe(path);
    return !probe || probe.peek() == std::ifstream::traits_type::eof();
  }();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) fail(path, "cannot open for append");
  if (fresh) {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(spec_digest));
    const std::string header = "{\"journal\": \"" + std::string(kMagic) +
                               "\", \"spec_digest\": \"" + digest + "\"}\n";
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size()))
      fail(path, "cannot write header");
    ::fsync(fd_);
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const ShardRecord& record) {
  const std::string line = record.to_json() + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (::write(fd_, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size()))
    fail(path_, "short write");
  if (::fsync(fd_) != 0) fail(path_, "fsync failed");
}

}  // namespace solsched::campaign
