#include "campaign/artifact_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/controller_io.hpp"

namespace solsched::campaign {

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw std::runtime_error("ArtifactCache: cannot create " + dir_ + ": " +
                             ec.message());
}

std::string ArtifactCache::path_of(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name + ".controller";
}

bool ArtifactCache::load(std::uint64_t key, core::TrainedController* out) const {
  const std::string path = path_of(key);
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream text;
  text << file.rdbuf();
  try {
    *out = core::deserialize_controller(text.str());
  } catch (const std::exception& e) {
    // A corrupt entry is a miss, not a fatal error: the caller retrains and
    // store() replaces the file atomically.
    std::fprintf(stderr, "solsched-campaign: discarding corrupt artifact %s (%s)\n",
                 path.c_str(), e.what());
    return false;
  }
  return true;
}

void ArtifactCache::store(std::uint64_t key,
                          const core::TrainedController& controller) const {
  const std::string path = path_of(key);
  const std::string tmp = path + ".tmp";
  const std::string text = core::serialize_controller(controller);
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file || !(file << text) || !file.flush())
      throw std::runtime_error("ArtifactCache: cannot write " + tmp);
  }
  // fsync the finished tmp file before rename: rename-then-crash must never
  // publish an empty or partially flushed artifact under the final name.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("ArtifactCache: cannot rename " + tmp + ": " +
                             ec.message());
}

}  // namespace solsched::campaign
