// Sharded campaign execution (DESIGN.md §13).
//
// run_campaign expands the spec into shards, trains (or cache-loads) one
// controller per unique offline configuration, then executes the remaining
// shards over util::ThreadPool — the pool's fetch_add index claiming gives
// dynamic load balancing for free — journaling each completion with an
// fsync'd append. Aggregates are a pure function of the journal, so a
// campaign killed at any instant resumes from the journal to bit-identical
// results at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/spec.hpp"

namespace solsched::campaign {

struct CampaignConfig {
  CampaignSpec spec;
  std::string dir;        ///< Campaign directory (journal + default cache).
  std::string cache_dir;  ///< Artifact cache; "" = <dir>/cache. Sharing one
                          ///< cache across campaigns dedups training further.
  /// Stop claiming new shards once this many completed *in this process*
  /// (0 = run everything). The deterministic stand-in for a mid-flight kill:
  /// journaled work is exactly a prefix-by-count of the remaining shards.
  std::size_t stop_after = 0;
  /// Telemetry cadence (DESIGN.md §15). Only consulted when observability
  /// is enabled — with SOLSCHED_OBS unset no bus is constructed and every
  /// publish site is a single null-pointer branch.
  std::uint64_t telemetry_heartbeat_ms = 1000;  ///< Heartbeat + status.json.
  std::uint64_t telemetry_stall_ms = 30000;     ///< Straggler flag window.
  /// Test/drill hook invoked inside the worker after sim.start is published
  /// (null = none). A hook that sleeps past telemetry_stall_ms is the
  /// watchdog drill: the shard goes quiet and must get flagged.
  std::function<void(std::size_t shard)> shard_hook;
};

struct CampaignResult {
  std::size_t total_shards = 0;
  std::size_t resumed = 0;       ///< Shards already in the journal at start.
  std::size_t executed = 0;      ///< Shards completed by this call.
  std::size_t trainings = 0;     ///< train_pipeline invocations.
  std::size_t artifact_disk_hits = 0;  ///< Unique configs served from disk.
  std::size_t artifact_hits = 0;  ///< Executed shards that reused an artifact
                                  ///< (trained earlier, this run or any run).
  bool finished = false;          ///< Every shard is now journaled.
  /// All journaled records (resumed + executed), sorted by shard index —
  /// the input of campaign::aggregate_*.
  std::vector<ShardRecord> records;
};

/// Runs (or resumes) the campaign. The journal lives at <dir>/journal.jsonl;
/// an existing journal must carry the same spec digest (else
/// std::runtime_error — a journal never mixes grids). Emits campaign.*
/// metrics and spans when observability is enabled.
CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace solsched::campaign
