// Intra-task fine-grained load-matching baseline [9].
//
// Designed for storage-less/converter-less nodes: every slot it picks the
// task combination whose total power best matches the instantaneous solar
// power (minimizing the mismatch that would be lost or need storage),
// forcing deadline-critical tasks in regardless. Like the inter-task
// baseline, its horizon is the current period only.
#pragma once

#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Per-slot exhaustive load matcher (one candidate per NVP, <= 2^6 combos).
class IntraTaskScheduler final : public nvp::Scheduler {
 public:
  std::string name() const override { return "Intra-task"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

  /// Load-matching core, shared with the proposed scheduler's intra mode:
  /// chooses among each NVP's head candidate to minimize |target_w - load|,
  /// always including forced tasks. Exposed for reuse and testing.
  static std::vector<std::size_t> match_load(
      const nvp::SlotContext& ctx, const std::vector<bool>& enabled,
      double target_w);
};

}  // namespace solsched::sched
