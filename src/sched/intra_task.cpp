#include "sched/intra_task.hpp"

#include "sched/sched_util.hpp"

namespace solsched::sched {

nvp::PeriodPlan IntraTaskScheduler::begin_period(const nvp::PeriodContext&) {
  return {};
}

std::vector<std::size_t> IntraTaskScheduler::match_load(
    const nvp::SlotContext& ctx, const std::vector<bool>& enabled,
    double target_w) {
  const double max_load_w =
      ctx.pmu->supplyable_j(ctx.solar_w, *ctx.bank, ctx.grid->dt_s) /
      ctx.grid->dt_s;
  return load_match_decision(*ctx.graph, *ctx.state, ctx.now_in_period_s,
                             ctx.grid->dt_s, enabled, target_w, {},
                             max_load_w);
}

std::vector<std::size_t> IntraTaskScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  // Match against the usable solar power through the direct channel.
  return match_load(ctx, {}, ctx.solar_w * ctx.pmu->config().direct_eta);
}

}  // namespace solsched::sched
