// Adaptive duty-cycling baseline (Kansal-style power management).
//
// A third family from the related work: instead of matching instantaneous
// load to solar (intra-task) or lazily deferring whole tasks (LSA), the
// node sets a per-period *energy budget* from an EWMA of recent harvest
// plus a bounded withdrawal from storage, enables the most valuable task
// subset that fits the budget, and schedules those tasks EDF within the
// period. Period-scale adaptation, no slot-scale matching.
#pragma once

#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Tuning knobs.
struct DutyCycleConfig {
  double harvest_ewma = 0.3;     ///< Weight of the newest period's harvest.
  double storage_draw = 0.25;    ///< Fraction of stored energy spendable
                                 ///< per period on top of expected harvest.
  double direct_eta = 0.92;     ///< Assumed direct-channel efficiency.
};

/// Energy-budgeted duty-cycling policy.
class DutyCycleScheduler final : public nvp::Scheduler {
 public:
  explicit DutyCycleScheduler(DutyCycleConfig config = {})
      : config_(config) {}

  std::string name() const override { return "Duty-cycle"; }

  void begin_trace(const task::TaskGraph& graph, const nvp::NodeConfig& node,
                   const solar::SolarTrace& trace) override;
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

  /// The budget computed for the current period (J), for inspection.
  double current_budget_j() const noexcept { return budget_j_; }

 private:
  DutyCycleConfig config_;
  double harvest_estimate_j_ = 0.0;
  bool harvest_seen_ = false;
  double budget_j_ = 0.0;
  std::vector<bool> enabled_;
};

}  // namespace solsched::sched
