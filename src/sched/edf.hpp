// Earliest-deadline-first scheduler (energy-oblivious classical baseline).
//
// Not part of the paper's comparison set, but a useful reference point: it
// shows how much of the DMR problem is energy-driven rather than
// ordering-driven.
#pragma once

#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Per-NVP EDF among live ready tasks.
class EdfScheduler final : public nvp::Scheduler {
 public:
  std::string name() const override { return "EDF"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;
};

}  // namespace solsched::sched
