#include "sched/lut.hpp"

#include <cmath>
#include <limits>

namespace solsched::sched {

Lut::Lut(double dmr_scale, double solar_scale, double cap_scale,
         double volt_scale)
    : dmr_scale_(dmr_scale),
      solar_scale_(solar_scale),
      cap_scale_(cap_scale),
      volt_scale_(volt_scale) {}

void Lut::insert(LutEntry entry) { entries_.push_back(std::move(entry)); }

double Lut::distance(const LutKey& a, const LutKey& b) const noexcept {
  const double d1 = (a.dmr - b.dmr) / dmr_scale_;
  const double d2 = (a.solar_energy_j - b.solar_energy_j) / solar_scale_;
  const double d3 = (a.capacity_f - b.capacity_f) / cap_scale_;
  const double d4 = (a.v0 - b.v0) / volt_scale_;
  return d1 * d1 + d2 * d2 + d3 * d3 + d4 * d4;
}

const LutEntry* Lut::lookup(const LutKey& key) const {
  const LutEntry* best = nullptr;
  double best_d = std::numeric_limits<double>::max();
  for (const auto& e : entries_) {
    const double d = distance(e.key, key);
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  return best;
}

const LutEntry* Lut::lookup_for_capacity(const LutKey& key) const {
  const LutEntry* best = nullptr;
  double best_d = std::numeric_limits<double>::max();
  for (const auto& e : entries_) {
    if (std::fabs(e.key.capacity_f - key.capacity_f) > 1e-9) continue;
    const double d = distance(e.key, key);
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  return best ? best : lookup(key);
}

const LutEntry* Lut::lookup_best_dmr(double solar_energy_j,
                                     double capacity_f, double v0,
                                     double dmr_weight) const {
  const LutEntry* best = nullptr;
  double best_score = std::numeric_limits<double>::max();
  for (const auto& e : entries_) {
    const double d2 = (e.key.solar_energy_j - solar_energy_j) / solar_scale_;
    const double d3 = (e.key.capacity_f - capacity_f) / cap_scale_;
    const double d4 = (e.key.v0 - v0) / volt_scale_;
    const double score =
        d2 * d2 + d3 * d3 + d4 * d4 + dmr_weight * e.key.dmr;
    if (score < best_score) {
      best_score = score;
      best = &e;
    }
  }
  return best;
}

}  // namespace solsched::sched
