// Long-term optimal scheduler (the paper's static upper bound, Sec. 4.2).
//
// Solves the simplified formulation (Eq. 12-14) by dynamic programming:
// state = (capacitor choice, discretized usable energy), one transition per
// period drawn from the per-period Pareto frontier (miss count vs. consumed
// energy), capacitor switches allowed at day boundaries (energy left in the
// abandoned capacitor is written off — the paper notes inter-day migration
// is rare because storage is drained overnight anyway).
//
// The same machinery doubles as the *training oracle*: its per-period
// decisions (capacitor, te, α) become the DBN's labelled samples, and every
// evaluated option is recorded into the Eq. 13 LUT.
//
// A finite `horizon_periods` plus `forecast_noise` turns the oracle into a
// bounded-lookahead planner with degrading long-range forecasts — the knob
// behind the paper's Fig. 10(a) prediction-length study.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nvp/scheduler.hpp"
#include "sched/lut.hpp"
#include "sched/period_option_cache.hpp"
#include "sched/period_optimizer.hpp"

namespace solsched::sched {

/// DP configuration.
struct OptimalConfig {
  std::size_t energy_buckets = 14;  ///< Usable-energy discretization per cap.
  /// Planning window in periods; 0 = the whole trace at once (pure oracle).
  std::size_t horizon_periods = 0;
  /// Relative forecast error growth per day of lookahead (0 = oracle).
  /// Within a window, the solar the DP sees at lookahead L days is scaled by
  /// a deterministic pseudo-random factor with stddev forecast_noise * L.
  double forecast_noise = 0.0;
  std::uint64_t noise_seed = 99;
  bool allow_cap_switch = true;  ///< Day-boundary capacitor re-selection.

  /// Memoize pareto_options across DP cells and the backtrack. The cache is
  /// exact: with identical remaining knobs, cached and uncached runs produce
  /// bit-identical plans, LUTs and miss counts.
  bool use_option_cache = true;
  /// Snap each label's start voltage onto a grid of this many points on the
  /// DP's sqrt-usable-energy axis before evaluating its period options
  /// (0 = exact v0, the pure-oracle default). Applied in cached AND
  /// uncached runs alike, so it never breaks cache/no-cache equivalence; it
  /// trades sub-grid start-voltage detail for cross-cell cache hits. The
  /// offline pipeline turns this on (see PipelineConfig), where the small
  /// plan perturbation is within training noise; leave at 0 where exact
  /// oracle optimality matters.
  std::size_t v0_quant_steps = 0;
  /// Optional externally owned cache, e.g. shared between the training
  /// oracle and a comparison run on the same trace. Null = private cache.
  std::shared_ptr<PeriodOptionCache> shared_cache;
  /// Seed-faithful evaluation inside pareto_options: serial subset sweep
  /// with full per-slot schedule recording. Only useful for benchmarking
  /// against the pre-optimization behaviour.
  bool legacy_eval = false;
};

/// Per-period decision recovered from the DP.
struct PlannedPeriod {
  std::size_t cap_index = 0;
  std::vector<bool> te;
  double alpha = 0.0;
  std::size_t planned_misses = 0;
  double planned_consumed_j = 0.0;
  double planned_v0 = 0.0;  ///< Bucket-center voltage the plan assumed.
};

/// Offline optimal policy (requires the full trace in begin_trace).
class OptimalScheduler final : public nvp::Scheduler {
 public:
  explicit OptimalScheduler(OptimalConfig config = {});

  std::string name() const override { return "Optimal"; }

  void begin_trace(const task::TaskGraph& graph, const nvp::NodeConfig& config,
                   const solar::SolarTrace& trace) override;
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

  /// The DP's plan, one entry per flat period (valid after begin_trace).
  const std::vector<PlannedPeriod>& plan() const noexcept { return plan_; }

  /// Every option the DP evaluated, as Eq. 13 LUT entries.
  const Lut& lut() const noexcept { return lut_; }

  /// Total misses the DP expects over the trace (lower bound estimate).
  std::size_t planned_total_misses() const noexcept { return planned_misses_; }

  /// Number of per-period Pareto evaluations the DP performed — the
  /// planning-complexity measure reported by the Fig. 10(a) bench.
  std::size_t dp_evaluations() const noexcept { return dp_evaluations_; }

  /// Hit/miss/eviction counters of the option cache (all-zero when
  /// use_option_cache is false). Valid after begin_trace.
  OptionCacheStats option_cache_stats() const {
    return cache_ ? cache_->stats() : OptionCacheStats{};
  }

 private:
  void run_dp(const task::TaskGraph& graph, const nvp::NodeConfig& config,
              const solar::SolarTrace& trace);

  OptimalConfig config_;
  std::shared_ptr<PeriodOptionCache> cache_;  ///< Null when caching is off.
  std::vector<PlannedPeriod> plan_;
  Lut lut_;
  std::size_t planned_misses_ = 0;
  std::size_t dp_evaluations_ = 0;
  // Execution-time state (greedy-lazy placement over the planned te).
  const solar::SolarTrace* trace_ = nullptr;
  double direct_eta_ = 0.92;
};

}  // namespace solsched::sched
