// Inter-task lazy scheduling baseline — the "up-to-date WCMA-based LSA" [3].
//
// The HOLLOWS-style policy maximizes energy utilization in the *current*
// period: a task starts when (a) its deadline forces it, (b) the present
// solar surplus can power it directly (free energy, no storage round trip),
// or (c) the WCMA forecast says waiting will not bring enough energy to
// finish it later, so stored energy must be spent now. It has no notion of
// tomorrow — exactly the single-period horizon the paper criticizes.
#pragma once

#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Tuning knobs of the baseline.
struct LsaConfig {
  /// Extra slots of safety margin before a start becomes forced.
  double margin_slots = 1.0;
};

/// Core LSA slot decision, reusable by the proposed scheduler's inter-task
/// mode: forced starts + free-solar starts + forecast-starved starts, over
/// tasks allowed by `enabled` (empty = all).
std::vector<std::size_t> lsa_slot_decision(const nvp::SlotContext& ctx,
                                           const std::vector<bool>& enabled,
                                           double margin_slots);

/// WCMA-driven lazy (as-late-as-viable) inter-task scheduler.
class LsaInterScheduler final : public nvp::Scheduler {
 public:
  explicit LsaInterScheduler(LsaConfig config = {}) : config_(config) {}

  std::string name() const override { return "Inter-task"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

 private:
  LsaConfig config_;
};

}  // namespace solsched::sched
