#include "sched/period_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "sched/sched_util.hpp"
#include "storage/cap_bank.hpp"
#include "task/period_state.hpp"
#include "util/thread_pool.hpp"

namespace solsched::sched {

PeriodOptimizer::PeriodOptimizer(const task::TaskGraph& graph,
                                 storage::PmuConfig pmu,
                                 storage::RegulatorModel regulators,
                                 storage::LeakageModel leakage, double v_low,
                                 double v_high, double dt_s)
    : graph_(&graph),
      pmu_(pmu),
      regulators_(std::move(regulators)),
      leakage_(leakage),
      v_low_(v_low),
      v_high_(v_high),
      dt_s_(dt_s),
      closed_(closed_subsets(graph)) {}

struct PeriodOptimizer::EvalScratch {
  storage::CapacitorBank bank;
  task::PeriodState state;
  std::vector<bool> all_enabled;
  std::vector<bool> must_run;
  LoadMatchScratch lm;
  std::vector<std::size_t> chosen;
  std::vector<double> suffix_j;

  EvalScratch(const PeriodOptimizer& opt, double capacity_f,
              const std::vector<double>& solar_w)
      : bank({capacity_f}, opt.regulators_, opt.leakage_, opt.v_low_,
             opt.v_high_),
        state(*opt.graph_) {
    // Oracle suffix sums: solar energy from slot m to the end of the
    // period. Depends only on solar_w, so all subset evaluations share it.
    const std::size_t n_slots = solar_w.size();
    suffix_j.assign(n_slots + 1, 0.0);
    for (std::size_t m = n_slots; m-- > 0;)
      suffix_j[m] = suffix_j[m + 1] + solar_w[m] * opt.dt_s_;
  }
};

PeriodEval PeriodOptimizer::evaluate(const std::vector<bool>& te,
                                     const std::vector<double>& solar_w,
                                     double capacity_f, double v0) const {
  return evaluate_impl(te, solar_w, capacity_f, v0, /*record_slots=*/true);
}

PeriodEval PeriodOptimizer::evaluate_impl(const std::vector<bool>& te,
                                          const std::vector<double>& solar_w,
                                          double capacity_f, double v0,
                                          bool record_slots) const {
  EvalScratch scratch(*this, capacity_f, solar_w);
  return evaluate_with(te, solar_w, v0, record_slots, scratch);
}

PeriodEval PeriodOptimizer::evaluate_with(const std::vector<bool>& te,
                                          const std::vector<double>& solar_w,
                                          double v0, bool record_slots,
                                          EvalScratch& scratch) const {
  const task::TaskGraph& graph = *graph_;
  const std::size_t n_slots = solar_w.size();
  if (te.empty()) scratch.all_enabled.assign(graph.size(), true);
  const std::vector<bool>& enabled = te.empty() ? scratch.all_enabled : te;

  storage::CapacitorBank& bank = scratch.bank;
  bank.selected().set_voltage(v0);
  const double initial_usable = bank.selected().usable_energy_j();
  const storage::Pmu pmu(pmu_);

  task::PeriodState& state = scratch.state;
  state.reset();
  PeriodEval eval;
  if (record_slots) eval.slots.resize(n_slots);

  std::vector<bool>& must_run = scratch.must_run;
  LoadMatchScratch& lm_scratch = scratch.lm;
  std::vector<std::size_t>& chosen = scratch.chosen;
  const std::vector<double>& suffix_j = scratch.suffix_j;

  for (std::size_t m = 0; m < n_slots; ++m) {
    const double now = static_cast<double>(m) * dt_s_;
    state.mark_deadlines(now);

    // Oracle starvation forcing: a task whose remaining harvest (through
    // the direct channel, up to its deadline) cannot cover its remaining
    // energy must start on stored energy now, before leakage taxes it.
    // The live-ready list is computed once per slot and shared with the
    // load-match decision below.
    state.live_ready_tasks_into(now, lm_scratch.live);
    must_run.assign(graph.size(), false);
    for (std::size_t id : lm_scratch.live) {
      if (!enabled[id]) continue;
      const auto& t = graph.task(id);
      const auto dl_slot = std::min(
          n_slots,
          static_cast<std::size_t>(std::max(0.0, t.deadline_s / dt_s_ + 0.5)));
      const double future_j =
          (suffix_j[m] - suffix_j[std::max(dl_slot, m)]) * pmu_.direct_eta;
      if (future_j < state.remaining_s(id) * t.power_w) must_run[id] = true;
    }

    // Intra-style placement: match the chosen load to the free solar budget
    // (storage traffic is priced by the mismatch), with forced/starved tasks
    // always included.
    const double direct_budget_w = solar_w[m] * pmu_.direct_eta;
    const double max_load_w =
        pmu.supplyable_j(solar_w[m], bank, dt_s_) / dt_s_;
    load_match_from_live_into(graph, state, lm_scratch.live, now, dt_s_,
                              enabled, direct_budget_w, must_run, max_load_w,
                              lm_scratch, chosen);
    double committed_w = 0.0;
    for (std::size_t id : chosen) committed_w += graph.task(id).power_w;

    const storage::SlotFlow flow =
        pmu.run_slot(solar_w[m], committed_w, bank, dt_s_);
    if (!flow.brownout)
      for (std::size_t id : chosen) state.execute(id, dt_s_);
    eval.migrated_in_j += flow.migrated_in_j;
    eval.cap_supplied_j += flow.cap_supplied_j;
    if (record_slots)
      eval.slots[m] = flow.brownout ? std::vector<std::size_t>{} : chosen;
  }

  const double period_end = static_cast<double>(n_slots) * dt_s_;
  state.mark_deadlines(period_end);

  eval.misses = state.miss_count();
  eval.dmr = state.dmr();
  eval.te_completed = true;
  for (std::size_t id = 0; id < graph.size(); ++id)
    if (enabled[id] && !state.completed(id)) eval.te_completed = false;
  eval.final_usable_j = bank.selected().usable_energy_j();
  eval.final_voltage_v = bank.selected().voltage_v();
  eval.consumed_cap_j = initial_usable - eval.final_usable_j;
  eval.alpha = alpha_index(graph, enabled, solar_w, dt_s_);
  return eval;
}

std::vector<PeriodOption> PeriodOptimizer::pareto_options(
    const std::vector<double>& solar_w, double capacity_f, double v0) const {
  OBS_COUNTER_ADD("sched.pareto.calls", 1);
  OBS_COUNTER_ADD("sched.pareto.subset_evals", closed_.size());
  // best option per miss count; prefer smaller E^c, tie-break on higher
  // final energy.
  std::vector<PeriodOption> best(graph_->size() + 1);
  std::vector<bool> seen(graph_->size() + 1, false);

  // Per-subset summaries land in pre-sized slots; the reduction below runs
  // serially in subset order, so the winner per miss count (including the
  // keep-the-earliest tie rule) matches the seed's serial sweep exactly,
  // at any thread count.
  struct Summary {
    std::size_t misses = 0;
    double consumed_cap_j = 0.0;
    double final_usable_j = 0.0;
    double final_voltage_v = 0.0;
    double alpha = 0.0;
  };
  std::vector<Summary> evals(closed_.size());
  if (fast_eval_) {
    // Chunked fan-out: one EvalScratch per chunk (bank + state + buffers
    // are expensive to build per subset), indices within a chunk evaluated
    // serially against it. Results land in per-index slots, so the chunk
    // geometry never changes the outcome.
    const std::size_t n = closed_.size();
    const std::size_t n_chunks =
        std::max<std::size_t>(1, std::min(n, util::ThreadPool::global().size()));
    util::parallel_for(n_chunks, [&](std::size_t c) {
      EvalScratch scratch(*this, capacity_f, solar_w);
      const std::size_t lo = c * n / n_chunks;
      const std::size_t hi = (c + 1) * n / n_chunks;
      for (std::size_t i = lo; i < hi; ++i) {
        const PeriodEval eval = evaluate_with(closed_[i], solar_w, v0,
                                              /*record_slots=*/false, scratch);
        evals[i] = Summary{eval.misses, eval.consumed_cap_j,
                           eval.final_usable_j, eval.final_voltage_v,
                           eval.alpha};
      }
    });
  } else {
    for (std::size_t i = 0; i < closed_.size(); ++i) {
      const PeriodEval eval = evaluate(closed_[i], solar_w, capacity_f, v0);
      evals[i] = Summary{eval.misses, eval.consumed_cap_j, eval.final_usable_j,
                         eval.final_voltage_v, eval.alpha};
    }
  }

  for (std::size_t i = 0; i < closed_.size(); ++i) {
    const Summary& eval = evals[i];
    const std::size_t k = eval.misses;
    if (k >= best.size()) continue;
    const bool better =
        !seen[k] || eval.consumed_cap_j < best[k].consumed_cap_j - 1e-12 ||
        (std::fabs(eval.consumed_cap_j - best[k].consumed_cap_j) <= 1e-12 &&
         eval.final_usable_j > best[k].final_usable_j);
    if (better) {
      seen[k] = true;
      best[k] = PeriodOption{k,
                             eval.consumed_cap_j,
                             eval.final_usable_j,
                             eval.final_voltage_v,
                             eval.alpha,
                             closed_[i]};
    }
  }

  std::vector<PeriodOption> out;
  for (std::size_t k = 0; k < best.size(); ++k)
    if (seen[k]) out.push_back(std::move(best[k]));
  return out;
}

}  // namespace solsched::sched
