#include "sched/period_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "sched/sched_util.hpp"
#include "storage/cap_bank.hpp"
#include "task/period_state.hpp"

namespace solsched::sched {

PeriodOptimizer::PeriodOptimizer(const task::TaskGraph& graph,
                                 storage::PmuConfig pmu,
                                 storage::RegulatorModel regulators,
                                 storage::LeakageModel leakage, double v_low,
                                 double v_high, double dt_s)
    : graph_(&graph),
      pmu_(pmu),
      regulators_(std::move(regulators)),
      leakage_(leakage),
      v_low_(v_low),
      v_high_(v_high),
      dt_s_(dt_s),
      closed_(closed_subsets(graph)) {}

PeriodEval PeriodOptimizer::evaluate(const std::vector<bool>& te,
                                     const std::vector<double>& solar_w,
                                     double capacity_f, double v0) const {
  const task::TaskGraph& graph = *graph_;
  const std::size_t n_slots = solar_w.size();
  const std::vector<bool> enabled =
      te.empty() ? std::vector<bool>(graph.size(), true) : te;

  storage::CapacitorBank bank({capacity_f}, regulators_, leakage_, v_low_,
                              v_high_);
  bank.selected().set_voltage(v0);
  const double initial_usable = bank.selected().usable_energy_j();
  const storage::Pmu pmu(pmu_);

  task::PeriodState state(graph);
  PeriodEval eval;
  eval.slots.resize(n_slots);

  // Oracle suffix sums: solar energy from slot m to the end of the period.
  std::vector<double> suffix_j(n_slots + 1, 0.0);
  for (std::size_t m = n_slots; m-- > 0;)
    suffix_j[m] = suffix_j[m + 1] + solar_w[m] * dt_s_;

  for (std::size_t m = 0; m < n_slots; ++m) {
    const double now = static_cast<double>(m) * dt_s_;
    state.mark_deadlines(now);

    // Oracle starvation forcing: a task whose remaining harvest (through
    // the direct channel, up to its deadline) cannot cover its remaining
    // energy must start on stored energy now, before leakage taxes it.
    std::vector<bool> must_run(graph.size(), false);
    for (std::size_t id : state.live_ready_tasks(now)) {
      if (!enabled[id]) continue;
      const auto& t = graph.task(id);
      const auto dl_slot = std::min(
          n_slots,
          static_cast<std::size_t>(std::max(0.0, t.deadline_s / dt_s_ + 0.5)));
      const double future_j =
          (suffix_j[m] - suffix_j[std::max(dl_slot, m)]) * pmu_.direct_eta;
      if (future_j < state.remaining_s(id) * t.power_w) must_run[id] = true;
    }

    // Intra-style placement: match the chosen load to the free solar budget
    // (storage traffic is priced by the mismatch), with forced/starved tasks
    // always included.
    const double direct_budget_w = solar_w[m] * pmu_.direct_eta;
    const double max_load_w =
        pmu.supplyable_j(solar_w[m], bank, dt_s_) / dt_s_;
    const std::vector<std::size_t> chosen =
        load_match_decision(graph, state, now, dt_s_, enabled,
                            direct_budget_w, must_run, max_load_w);
    double committed_w = 0.0;
    for (std::size_t id : chosen) committed_w += graph.task(id).power_w;

    const storage::SlotFlow flow =
        pmu.run_slot(solar_w[m], committed_w, bank, dt_s_);
    if (!flow.brownout)
      for (std::size_t id : chosen) state.execute(id, dt_s_);
    eval.migrated_in_j += flow.migrated_in_j;
    eval.cap_supplied_j += flow.cap_supplied_j;
    eval.slots[m] = flow.brownout ? std::vector<std::size_t>{} : chosen;
  }

  const double period_end = static_cast<double>(n_slots) * dt_s_;
  state.mark_deadlines(period_end);

  eval.misses = state.miss_count();
  eval.dmr = state.dmr();
  eval.te_completed = true;
  for (std::size_t id = 0; id < graph.size(); ++id)
    if (enabled[id] && !state.completed(id)) eval.te_completed = false;
  eval.final_usable_j = bank.selected().usable_energy_j();
  eval.final_voltage_v = bank.selected().voltage_v();
  eval.consumed_cap_j = initial_usable - eval.final_usable_j;
  eval.alpha = alpha_index(graph, enabled, solar_w, dt_s_);
  return eval;
}

std::vector<PeriodOption> PeriodOptimizer::pareto_options(
    const std::vector<double>& solar_w, double capacity_f, double v0) const {
  // best option per miss count; prefer smaller E^c, tie-break on higher
  // final energy.
  std::vector<PeriodOption> best(graph_->size() + 1);
  std::vector<bool> seen(graph_->size() + 1, false);

  for (const auto& te : closed_) {
    const PeriodEval eval = evaluate(te, solar_w, capacity_f, v0);
    const std::size_t k = eval.misses;
    if (k >= best.size()) continue;
    const bool better =
        !seen[k] || eval.consumed_cap_j < best[k].consumed_cap_j - 1e-12 ||
        (std::fabs(eval.consumed_cap_j - best[k].consumed_cap_j) <= 1e-12 &&
         eval.final_usable_j > best[k].final_usable_j);
    if (better) {
      seen[k] = true;
      best[k] = PeriodOption{k,
                             eval.consumed_cap_j,
                             eval.final_usable_j,
                             eval.final_voltage_v,
                             eval.alpha,
                             te};
    }
  }

  std::vector<PeriodOption> out;
  for (std::size_t k = 0; k < best.size(); ++k)
    if (seen[k]) out.push_back(std::move(best[k]));
  return out;
}

}  // namespace solsched::sched
