// As-soon-as-possible scheduler.
//
// Runs every ready task at the earliest opportunity with no energy
// awareness. The paper uses ASAP schedules to derive the energy-migration
// patterns that drive capacitor sizing (Sec. 4.1); it also serves as a
// simple baseline.
#pragma once

#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Greedy earliest-execution policy.
class AsapScheduler final : public nvp::Scheduler {
 public:
  /// If `only_live` is true, tasks whose deadline already passed are not
  /// scheduled (DMR-oriented); if false, every incomplete ready task runs
  /// (pure load shape, used for sizing).
  explicit AsapScheduler(bool only_live = true) : only_live_(only_live) {}

  std::string name() const override { return "ASAP"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

 private:
  bool only_live_;
};

}  // namespace solsched::sched
