// Helpers shared by scheduling policies.
#pragma once

#include <cstddef>
#include <vector>

#include "task/period_state.hpp"
#include "task/task_graph.hpp"

namespace solsched::sched {

/// Live, ready candidate tasks grouped by NVP, each NVP's list sorted by
/// earliest deadline first (ties: less remaining work first, then id).
/// Only tasks with `enabled` true are considered (empty mask = all).
std::vector<std::vector<std::size_t>> candidates_by_nvp(
    const task::TaskGraph& graph, const task::PeriodState& state,
    double now_s, const std::vector<bool>& enabled);

/// Latest slot-aligned start time after which `id` can no longer finish by
/// its deadline: deadline - remaining (s). Negative slack means the task can
/// no longer be saved.
double latest_start_s(const task::TaskGraph& graph,
                      const task::PeriodState& state, std::size_t id);

/// True if the task must run in the slot starting at now_s to have any
/// chance of meeting its deadline (slack smaller than one slot).
bool is_forced(const task::TaskGraph& graph, const task::PeriodState& state,
               std::size_t id, double now_s, double dt_s);

/// Sum of execution power of the chosen task set (W).
double total_power_w(const task::TaskGraph& graph,
                     const std::vector<std::size_t>& chosen);

/// Dependency closure check: true if `subset` (bitmask vector) contains all
/// predecessors of each of its members.
bool dependency_closed(const task::TaskGraph& graph,
                       const std::vector<bool>& subset);

/// Enumerates all dependency-closed subsets of the task set. For N <= 8 this
/// is at most 256 masks, typically far fewer with chains.
std::vector<std::vector<bool>> closed_subsets(const task::TaskGraph& graph);

/// Per-slot load-matching decision shared by the intra-task baseline, the
/// period optimizer and the optimal scheduler: among each NVP's head
/// candidate, always runs tasks that are deadline-forced or listed in
/// `must_run`, then picks the optional combination whose total power is
/// closest to `target_w` (more tasks win ties).
/// Combinations whose load exceeds `max_load_w` (the PMU's supplyable power
/// this slot) are infeasible: running them would brown the node out and
/// waste the slot entirely. If even the forced set exceeds the limit,
/// forced tasks are shed latest-deadline-first.
std::vector<std::size_t> load_match_decision(
    const task::TaskGraph& graph, const task::PeriodState& state,
    double now_s, double dt_s, const std::vector<bool>& enabled,
    double target_w, const std::vector<bool>& must_run = {},
    double max_load_w = 1e18);

/// Reused buffers for load_match_decision_into. One set per period
/// evaluation instead of one per slot: the DP's subset sweep makes ~1M
/// slot decisions per training run and the per-slot allocations dominate
/// its profile.
struct LoadMatchScratch {
  std::vector<std::size_t> live;
  std::vector<std::vector<std::size_t>> by_nvp;
  std::vector<std::size_t> heads;
  std::vector<bool> forced;
  std::vector<std::size_t> optional;  ///< Head indices the sweep varies.
};

/// Buffer-reusing variant of load_match_decision: identical decision,
/// result lands in `chosen` (cleared first).
void load_match_decision_into(const task::TaskGraph& graph,
                              const task::PeriodState& state, double now_s,
                              double dt_s, const std::vector<bool>& enabled,
                              double target_w,
                              const std::vector<bool>& must_run,
                              double max_load_w, LoadMatchScratch& scratch,
                              std::vector<std::size_t>& chosen);

/// Same decision, but from a live-ready list the caller already computed
/// for this (state, now_s) — the period evaluator needs that list for its
/// must-run pass anyway, so this avoids deriving it twice per slot.
void load_match_from_live_into(
    const task::TaskGraph& graph, const task::PeriodState& state,
    const std::vector<std::size_t>& live, double now_s, double dt_s,
    const std::vector<bool>& enabled, double target_w,
    const std::vector<bool>& must_run, double max_load_w,
    LoadMatchScratch& scratch, std::vector<std::size_t>& chosen);

/// The scheduling-pattern index α (Eq. 18): energy demanded by the subset /
/// solar energy supplied in the period. Returns a large sentinel (1e9) when
/// the period has no solar.
double alpha_index(const task::TaskGraph& graph,
                   const std::vector<bool>& subset,
                   const std::vector<double>& solar_slots_w, double dt_s);

}  // namespace solsched::sched
