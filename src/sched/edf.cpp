#include "sched/edf.hpp"

#include "sched/sched_util.hpp"

namespace solsched::sched {

nvp::PeriodPlan EdfScheduler::begin_period(const nvp::PeriodContext&) {
  return {};
}

std::vector<std::size_t> EdfScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const auto by_nvp =
      candidates_by_nvp(*ctx.graph, *ctx.state, ctx.now_in_period_s, {});
  std::vector<std::size_t> chosen;
  for (const auto& list : by_nvp)
    if (!list.empty()) chosen.push_back(list.front());
  return chosen;
}

}  // namespace solsched::sched
