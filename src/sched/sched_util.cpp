#include "sched/sched_util.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace solsched::sched {

namespace {

/// Buckets an already-computed live-ready list by NVP and sorts each bucket
/// by (deadline, remaining, id). That key is a *total* order over distinct
/// tasks, so the sorted result is unique regardless of algorithm; the
/// buckets are tiny (one entry per live task of the NVP), making insertion
/// sort the cheapest correct choice.
void candidates_from_live(const task::TaskGraph& graph,
                          const task::PeriodState& state,
                          const std::vector<std::size_t>& live,
                          const std::vector<bool>& enabled,
                          LoadMatchScratch& s) {
  s.by_nvp.resize(graph.nvp_count());
  for (auto& list : s.by_nvp) list.clear();
  for (std::size_t id : live) {
    if (!enabled.empty() && !enabled[id]) continue;
    s.by_nvp[graph.task(id).nvp].push_back(id);
  }
  auto before = [&](std::size_t a, std::size_t b) {
    const auto& ta = graph.task(a);
    const auto& tb = graph.task(b);
    if (ta.deadline_s != tb.deadline_s) return ta.deadline_s < tb.deadline_s;
    if (state.remaining_s(a) != state.remaining_s(b))
      return state.remaining_s(a) < state.remaining_s(b);
    return a < b;
  };
  for (auto& list : s.by_nvp)
    for (std::size_t i = 1; i < list.size(); ++i) {
      const std::size_t v = list[i];
      std::size_t j = i;
      while (j > 0 && before(v, list[j - 1])) {
        list[j] = list[j - 1];
        --j;
      }
      list[j] = v;
    }
}

void candidates_by_nvp_into(const task::TaskGraph& graph,
                            const task::PeriodState& state, double now_s,
                            const std::vector<bool>& enabled,
                            LoadMatchScratch& s) {
  state.live_ready_tasks_into(now_s, s.live);
  candidates_from_live(graph, state, s.live, enabled, s);
}

}  // namespace

std::vector<std::vector<std::size_t>> candidates_by_nvp(
    const task::TaskGraph& graph, const task::PeriodState& state,
    double now_s, const std::vector<bool>& enabled) {
  LoadMatchScratch s;
  candidates_by_nvp_into(graph, state, now_s, enabled, s);
  return std::move(s.by_nvp);
}

double latest_start_s(const task::TaskGraph& graph,
                      const task::PeriodState& state, std::size_t id) {
  return graph.task(id).deadline_s - state.remaining_s(id);
}

bool is_forced(const task::TaskGraph& graph, const task::PeriodState& state,
               std::size_t id, double now_s, double dt_s) {
  return latest_start_s(graph, state, id) < now_s + dt_s;
}

double total_power_w(const task::TaskGraph& graph,
                     const std::vector<std::size_t>& chosen) {
  double acc = 0.0;
  for (std::size_t id : chosen) acc += graph.task(id).power_w;
  return acc;
}

bool dependency_closed(const task::TaskGraph& graph,
                       const std::vector<bool>& subset) {
  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (!subset[id]) continue;
    for (std::size_t p : graph.predecessors(id))
      if (!subset[p]) return false;
  }
  return true;
}

std::vector<std::vector<bool>> closed_subsets(const task::TaskGraph& graph) {
  const std::size_t n = graph.size();
  std::vector<std::vector<bool>> out;
  const std::size_t total = std::size_t{1} << n;
  for (std::size_t mask = 0; mask < total; ++mask) {
    std::vector<bool> subset(n);
    for (std::size_t i = 0; i < n; ++i) subset[i] = (mask >> i) & 1u;
    if (dependency_closed(graph, subset)) out.push_back(std::move(subset));
  }
  return out;
}

std::vector<std::size_t> load_match_decision(
    const task::TaskGraph& graph, const task::PeriodState& state,
    double now_s, double dt_s, const std::vector<bool>& enabled,
    double target_w, const std::vector<bool>& must_run, double max_load_w) {
  LoadMatchScratch scratch;
  std::vector<std::size_t> chosen;
  load_match_decision_into(graph, state, now_s, dt_s, enabled, target_w,
                           must_run, max_load_w, scratch, chosen);
  return chosen;
}

void load_match_decision_into(const task::TaskGraph& graph,
                              const task::PeriodState& state, double now_s,
                              double dt_s, const std::vector<bool>& enabled,
                              double target_w,
                              const std::vector<bool>& must_run,
                              double max_load_w, LoadMatchScratch& scratch,
                              std::vector<std::size_t>& chosen) {
  state.live_ready_tasks_into(now_s, scratch.live);
  load_match_from_live_into(graph, state, scratch.live, now_s, dt_s, enabled,
                            target_w, must_run, max_load_w, scratch, chosen);
}

void load_match_from_live_into(
    const task::TaskGraph& graph, const task::PeriodState& state,
    const std::vector<std::size_t>& live, double now_s, double dt_s,
    const std::vector<bool>& enabled, double target_w,
    const std::vector<bool>& must_run, double max_load_w,
    LoadMatchScratch& scratch, std::vector<std::size_t>& chosen) {
  candidates_from_live(graph, state, live, enabled, scratch);

  std::vector<std::size_t>& heads = scratch.heads;
  std::vector<bool>& forced = scratch.forced;
  heads.clear();
  forced.clear();
  double forced_w = 0.0;
  for (const auto& list : scratch.by_nvp) {
    if (list.empty()) continue;
    const std::size_t head = list.front();
    heads.push_back(head);
    const bool f = is_forced(graph, state, head, now_s, dt_s) ||
                   (!must_run.empty() && must_run[head]);
    forced.push_back(f);
    if (f) forced_w += graph.task(head).power_w;
  }

  // Shed forced tasks latest-deadline-first if even they exceed the
  // supplyable power (a brownout would waste the whole slot).
  while (forced_w > max_load_w + 1e-12) {
    int victim = -1;
    double latest = -1.0;
    for (std::size_t i = 0; i < heads.size(); ++i)
      if (forced[i] && graph.task(heads[i]).deadline_s > latest) {
        latest = graph.task(heads[i]).deadline_s;
        victim = static_cast<int>(i);
      }
    if (victim < 0) break;
    forced[static_cast<std::size_t>(victim)] = false;
    forced_w -= graph.task(heads[static_cast<std::size_t>(victim)]).power_w;
    // The shed task stays a (non-forced) candidate for the subset search.
  }

  // Subset sweep over the *optional* heads only. Forced heads are in every
  // combination, so the full 2^n sweep visits each distinct chosen set 2^f
  // times; enumerating the 2^(n-f) optional subsets visits each set exactly
  // once, in its first-occurrence order of the full sweep — which is what
  // the "strictly better, else more tasks" selection rule keys on, so the
  // winning set is unchanged.
  std::vector<std::size_t>& opt = scratch.optional;
  opt.clear();
  double base_w = 0.0;
  int base_count = 0;
  for (std::size_t i = 0; i < heads.size(); ++i) {
    if (forced[i]) {
      base_w += graph.task(heads[i]).power_w;
      ++base_count;
    } else {
      opt.push_back(i);
    }
  }
  const std::size_t m = opt.size();
  const std::size_t total = std::size_t{1} << m;
  std::size_t best_mask = 0;
  double best_cost = std::numeric_limits<double>::max();
  int best_count = -1;
  for (std::size_t mask = 0; mask < total; ++mask) {
    double load_w = base_w;
    int count = base_count;
    for (std::size_t b = 0; b < m; ++b) {
      if ((mask >> b) & 1u) {
        load_w += graph.task(heads[opt[b]]).power_w;
        ++count;
      }
    }
    if (load_w > max_load_w + 1e-12) continue;  // Would brown out.
    const double cost = std::fabs(target_w - load_w);
    if (cost < best_cost - 1e-12 ||
        (std::fabs(cost - best_cost) <= 1e-12 && count > best_count)) {
      best_cost = cost;
      best_count = count;
      best_mask = mask;
    }
  }

  chosen.clear();
  std::size_t b = 0;
  for (std::size_t i = 0; i < heads.size(); ++i) {
    if (forced[i]) {
      chosen.push_back(heads[i]);
    } else {
      if ((best_mask >> b) & 1u) chosen.push_back(heads[i]);
      ++b;
    }
  }
}

double alpha_index(const task::TaskGraph& graph,
                   const std::vector<bool>& subset,
                   const std::vector<double>& solar_slots_w, double dt_s) {
  double demand_j = 0.0;
  for (std::size_t id = 0; id < graph.size(); ++id)
    if (subset[id]) demand_j += graph.task(id).energy_j();
  double supply_j = 0.0;
  for (double p : solar_slots_w) supply_j += p * dt_s;
  if (supply_j <= 0.0) return demand_j > 0.0 ? 1e9 : 0.0;
  return demand_j / supply_j;
}

}  // namespace solsched::sched
