#include "sched/sched_util.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace solsched::sched {

namespace {

void candidates_by_nvp_into(const task::TaskGraph& graph,
                            const task::PeriodState& state, double now_s,
                            const std::vector<bool>& enabled,
                            LoadMatchScratch& s) {
  s.by_nvp.resize(graph.nvp_count());
  for (auto& list : s.by_nvp) list.clear();
  state.live_ready_tasks_into(now_s, s.live);
  for (std::size_t id : s.live) {
    if (!enabled.empty() && !enabled[id]) continue;
    s.by_nvp[graph.task(id).nvp].push_back(id);
  }
  for (auto& list : s.by_nvp)
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      const auto& ta = graph.task(a);
      const auto& tb = graph.task(b);
      if (ta.deadline_s != tb.deadline_s) return ta.deadline_s < tb.deadline_s;
      if (state.remaining_s(a) != state.remaining_s(b))
        return state.remaining_s(a) < state.remaining_s(b);
      return a < b;
    });
}

}  // namespace

std::vector<std::vector<std::size_t>> candidates_by_nvp(
    const task::TaskGraph& graph, const task::PeriodState& state,
    double now_s, const std::vector<bool>& enabled) {
  LoadMatchScratch s;
  candidates_by_nvp_into(graph, state, now_s, enabled, s);
  return std::move(s.by_nvp);
}

double latest_start_s(const task::TaskGraph& graph,
                      const task::PeriodState& state, std::size_t id) {
  return graph.task(id).deadline_s - state.remaining_s(id);
}

bool is_forced(const task::TaskGraph& graph, const task::PeriodState& state,
               std::size_t id, double now_s, double dt_s) {
  return latest_start_s(graph, state, id) < now_s + dt_s;
}

double total_power_w(const task::TaskGraph& graph,
                     const std::vector<std::size_t>& chosen) {
  double acc = 0.0;
  for (std::size_t id : chosen) acc += graph.task(id).power_w;
  return acc;
}

bool dependency_closed(const task::TaskGraph& graph,
                       const std::vector<bool>& subset) {
  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (!subset[id]) continue;
    for (std::size_t p : graph.predecessors(id))
      if (!subset[p]) return false;
  }
  return true;
}

std::vector<std::vector<bool>> closed_subsets(const task::TaskGraph& graph) {
  const std::size_t n = graph.size();
  std::vector<std::vector<bool>> out;
  const std::size_t total = std::size_t{1} << n;
  for (std::size_t mask = 0; mask < total; ++mask) {
    std::vector<bool> subset(n);
    for (std::size_t i = 0; i < n; ++i) subset[i] = (mask >> i) & 1u;
    if (dependency_closed(graph, subset)) out.push_back(std::move(subset));
  }
  return out;
}

std::vector<std::size_t> load_match_decision(
    const task::TaskGraph& graph, const task::PeriodState& state,
    double now_s, double dt_s, const std::vector<bool>& enabled,
    double target_w, const std::vector<bool>& must_run, double max_load_w) {
  LoadMatchScratch scratch;
  std::vector<std::size_t> chosen;
  load_match_decision_into(graph, state, now_s, dt_s, enabled, target_w,
                           must_run, max_load_w, scratch, chosen);
  return chosen;
}

void load_match_decision_into(const task::TaskGraph& graph,
                              const task::PeriodState& state, double now_s,
                              double dt_s, const std::vector<bool>& enabled,
                              double target_w,
                              const std::vector<bool>& must_run,
                              double max_load_w, LoadMatchScratch& scratch,
                              std::vector<std::size_t>& chosen) {
  candidates_by_nvp_into(graph, state, now_s, enabled, scratch);

  std::vector<std::size_t>& heads = scratch.heads;
  std::vector<bool>& forced = scratch.forced;
  heads.clear();
  forced.clear();
  double forced_w = 0.0;
  for (const auto& list : scratch.by_nvp) {
    if (list.empty()) continue;
    const std::size_t head = list.front();
    heads.push_back(head);
    const bool f = is_forced(graph, state, head, now_s, dt_s) ||
                   (!must_run.empty() && must_run[head]);
    forced.push_back(f);
    if (f) forced_w += graph.task(head).power_w;
  }

  // Shed forced tasks latest-deadline-first if even they exceed the
  // supplyable power (a brownout would waste the whole slot).
  while (forced_w > max_load_w + 1e-12) {
    int victim = -1;
    double latest = -1.0;
    for (std::size_t i = 0; i < heads.size(); ++i)
      if (forced[i] && graph.task(heads[i]).deadline_s > latest) {
        latest = graph.task(heads[i]).deadline_s;
        victim = static_cast<int>(i);
      }
    if (victim < 0) break;
    forced[static_cast<std::size_t>(victim)] = false;
    forced_w -= graph.task(heads[static_cast<std::size_t>(victim)]).power_w;
    // The shed task stays a (non-forced) candidate for the subset search.
  }

  const std::size_t n = heads.size();
  const std::size_t total = std::size_t{1} << n;
  std::size_t best_mask = 0;
  double best_cost = std::numeric_limits<double>::max();
  int best_count = -1;
  for (std::size_t mask = 0; mask < total; ++mask) {
    double load_w = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (forced[i] || ((mask >> i) & 1u)) {
        load_w += graph.task(heads[i]).power_w;
        ++count;
      }
    }
    if (load_w > max_load_w + 1e-12) continue;  // Would brown out.
    const double cost = std::fabs(target_w - load_w);
    if (cost < best_cost - 1e-12 ||
        (std::fabs(cost - best_cost) <= 1e-12 && count > best_count)) {
      best_cost = cost;
      best_count = count;
      best_mask = mask;
    }
  }

  chosen.clear();
  for (std::size_t i = 0; i < n; ++i)
    if (forced[i] || ((best_mask >> i) & 1u)) chosen.push_back(heads[i]);
}

double alpha_index(const task::TaskGraph& graph,
                   const std::vector<bool>& subset,
                   const std::vector<double>& solar_slots_w, double dt_s) {
  double demand_j = 0.0;
  for (std::size_t id = 0; id < graph.size(); ++id)
    if (subset[id]) demand_j += graph.task(id).energy_j();
  double supply_j = 0.0;
  for (double p : solar_slots_w) supply_j += p * dt_s;
  if (supply_j <= 0.0) return demand_j > 0.0 ? 1e9 : 0.0;
  return demand_j / supply_j;
}

}  // namespace solsched::sched
