// LUT-driven online scheduler (ablation alternative to the DBN).
//
// The paper compresses its offline LUT (Eq. 13) into a DBN for the online
// side; this policy instead queries the LUT directly each period with the
// measured previous-period solar energy and each capacitor's voltage,
// adopting the nearest low-DMR entry's (capacitor, te, α). It shares the
// Eq. 22 switch gate and the δ mode rule with the proposed scheduler, so
// comparing the two isolates the value of the learned generalization
// against raw nearest-neighbour recall.
#pragma once

#include <memory>

#include "nvp/scheduler.hpp"
#include "sched/lut.hpp"
#include "sched/proposed.hpp"

namespace solsched::sched {

/// Online policy backed by the Eq. 13 lookup table.
class LutScheduler final : public nvp::Scheduler {
 public:
  /// `lut` must stay alive for the scheduler's lifetime.
  /// `capacities_f` is the bank layout the LUT's capacity column indexes.
  LutScheduler(std::shared_ptr<const Lut> lut,
               std::vector<double> capacities_f, std::size_t n_tasks,
               ProposedConfig config = {});

  std::string name() const override { return "LUT-online"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

 private:
  std::shared_ptr<const Lut> lut_;
  std::vector<double> capacities_f_;
  std::size_t n_tasks_;
  ProposedConfig config_;
  std::vector<bool> active_te_;
  bool intra_mode_ = false;
};

}  // namespace solsched::sched
