// Per-period minimum-energy scheduling (Eq. 15-18).
//
// Given a task subset te, the period's (oracle) solar slots and the selected
// capacitor's start state, finds a slot assignment that completes te's tasks
// by their deadlines while consuming as little capacitor energy as possible.
// Placement is greedy-lazy with full solar knowledge: run on free solar
// surplus whenever possible, otherwise as late as deadlines allow, spending
// stored energy early only when the remaining oracle harvest cannot cover a
// task. The paper's exact 2^(N·Ns) enumeration is replaced by this
// polynomial placement (documented in DESIGN.md); it reproduces the
// formulation's structure at a cost a DP over months can afford.
#pragma once

#include <vector>

#include "storage/leakage.hpp"
#include "storage/pmu.hpp"
#include "storage/regulator.hpp"
#include "task/task_graph.hpp"

namespace solsched::sched {

/// Result of evaluating one (te, solar, capacitor) period.
struct PeriodEval {
  bool te_completed = false;   ///< Every te task met its deadline.
  std::size_t misses = 0;      ///< Deadline misses across the whole task set.
  double dmr = 0.0;            ///< misses / N (Eq. 16's DMR_{i,j}).
  double consumed_cap_j = 0.0; ///< E^c: net usable-energy decrease (Eq. 15,
                               ///< negative when the period net-charges).
  double final_usable_j = 0.0; ///< Usable energy left in the capacitor.
  double final_voltage_v = 0.0;
  double alpha = 0.0;          ///< Pattern index (Eq. 18).
  double migrated_in_j = 0.0;
  double cap_supplied_j = 0.0;
  std::vector<std::vector<std::size_t>> slots;  ///< Chosen tasks per slot.
};

/// One entry of the per-period Pareto frontier: for a given achievable miss
/// count, the minimum-E^c way to reach it.
struct PeriodOption {
  std::size_t misses = 0;
  double consumed_cap_j = 0.0;
  double final_usable_j = 0.0;
  double final_voltage_v = 0.0;
  double alpha = 0.0;
  std::vector<bool> te;
};

/// Evaluates task subsets within one period over one capacitor.
class PeriodOptimizer {
 public:
  PeriodOptimizer(const task::TaskGraph& graph, storage::PmuConfig pmu,
                  storage::RegulatorModel regulators,
                  storage::LeakageModel leakage, double v_low, double v_high,
                  double dt_s);

  /// Simulates the period executing subset `te` (size N; empty = all tasks)
  /// with the greedy-lazy placement described above.
  PeriodEval evaluate(const std::vector<bool>& te,
                      const std::vector<double>& solar_w, double capacity_f,
                      double v0) const;

  /// Evaluates every dependency-closed subset and returns, for each
  /// achievable miss count, the option with the smallest E^c. Sorted by
  /// ascending miss count.
  ///
  /// With fast_eval (the default) the subset sweep skips per-slot schedule
  /// recording (pareto_options never reads it) and fans the independent
  /// subset evaluations out on util::parallel_for, reducing the per-subset
  /// summaries serially in subset order — the selected options are
  /// identical to the serial sweep at every thread count.
  std::vector<PeriodOption> pareto_options(const std::vector<double>& solar_w,
                                           double capacity_f, double v0) const;

  /// Disables the fast sweep: pareto_options then runs the seed-era serial
  /// loop over full evaluate() calls. Exists so benches can measure the
  /// legacy offline pipeline in-binary; results are identical either way.
  void set_fast_eval(bool fast) noexcept { fast_eval_ = fast; }
  bool fast_eval() const noexcept { return fast_eval_; }

  const task::TaskGraph& graph() const noexcept { return *graph_; }

 private:
  /// Reusable per-evaluation state (capacitor bank, period state, decision
  /// buffers). Constructing these per subset dominates the sweep's profile,
  /// so the fast path builds one scratch per chunk and resets it per eval.
  struct EvalScratch;

  PeriodEval evaluate_impl(const std::vector<bool>& te,
                           const std::vector<double>& solar_w,
                           double capacity_f, double v0,
                           bool record_slots) const;

  /// Core evaluation against caller-owned scratch (fully reset inside, so
  /// reuse never changes results). scratch.bank must match capacity_f and
  /// scratch.suffix_j must match solar_w.
  PeriodEval evaluate_with(const std::vector<bool>& te,
                           const std::vector<double>& solar_w, double v0,
                           bool record_slots, EvalScratch& scratch) const;

  const task::TaskGraph* graph_;
  storage::PmuConfig pmu_;
  storage::RegulatorModel regulators_;
  storage::LeakageModel leakage_;
  double v_low_;
  double v_high_;
  double dt_s_;
  bool fast_eval_ = true;
  std::vector<std::vector<bool>> closed_;  ///< Cached closed subsets.
};

}  // namespace solsched::sched
