#include "sched/optimal.hpp"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/sched_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace solsched::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::max() / 4;

/// Deterministic per-period forecast perturbation factor.
double forecast_factor(std::uint64_t seed, std::size_t window_start,
                       std::size_t period, double sigma) {
  if (sigma <= 0.0) return 1.0;
  util::Rng rng(seed ^ (window_start * 0x9E3779B9ull) ^ (period * 0x85EBCA6Bull));
  return std::max(0.05, 1.0 + sigma * rng.normal());
}

}  // namespace

OptimalScheduler::OptimalScheduler(OptimalConfig config)
    : config_(std::move(config)) {
  if (config_.energy_buckets == 0)
    throw std::invalid_argument("OptimalScheduler: need >= 1 energy bucket");
  if (config_.use_option_cache)
    cache_ = config_.shared_cache ? config_.shared_cache
                                  : std::make_shared<PeriodOptionCache>();
}

void OptimalScheduler::begin_trace(const task::TaskGraph& graph,
                                   const nvp::NodeConfig& config,
                                   const solar::SolarTrace& trace) {
  trace_ = &trace;
  direct_eta_ = config.pmu.direct_eta;
  run_dp(graph, config, trace);
}

void OptimalScheduler::run_dp(const task::TaskGraph& graph,
                              const nvp::NodeConfig& config,
                              const solar::SolarTrace& trace) {
  OBS_SPAN("dp.run");
  const solar::TimeGrid& grid = trace.grid();
  const std::size_t n_periods = grid.total_periods();
  const std::size_t n_caps = config.capacities_f.size();
  const std::size_t n_buckets = config_.energy_buckets;
  const double dt = grid.dt_s;

  if (graph.size() > 64)
    throw std::invalid_argument(
        "OptimalScheduler: task graphs above 64 tasks are not supported "
        "(the DP packs the te decision into a 64-bit mask); got " +
        std::to_string(graph.size()) + " tasks");

  PeriodOptimizer optimizer(graph, config.pmu, config.regulators,
                            config.leakage, config.v_low, config.v_high, dt);
  optimizer.set_fast_eval(!config_.legacy_eval);

  // One funnel for every option-set derivation: quantize the start voltage
  // (identically with or without the cache, so cached and uncached runs
  // stay bit-identical), then memoize on the exact resulting key.
  const auto options_for = [&](const std::vector<double>& solar_w,
                               double capacity_f, double v0) {
    const double vq = PeriodOptionCache::quantize_v0(
        v0, config.v_low, config.v_high, config_.v0_quant_steps);
    if (!cache_) {
      OBS_SPAN("dp.pareto_options");
      return std::make_shared<const std::vector<PeriodOption>>(
          optimizer.pareto_options(solar_w, capacity_f, vq));
    }
    return cache_->lookup_or_compute(solar_w, capacity_f, vq, [&] {
      OBS_SPAN("dp.pareto_options");
      return optimizer.pareto_options(solar_w, capacity_f, vq);
    });
  };
  const auto quantized_v0 = [&](double v0) {
    return PeriodOptionCache::quantize_v0(v0, config.v_low, config.v_high,
                                          config_.v0_quant_steps);
  };

  // Per-capacitor bucket geometry over usable energy. Buckets only bound the
  // number of labels kept per layer; each label carries its *continuous*
  // stored energy, so per-period gains smaller than a bucket still
  // accumulate across periods (flooring energy to bucket edges would make
  // overnight banking impossible). Square-root spacing concentrates label
  // resolution at low stored energy where decisions are most sensitive.
  std::vector<double> max_usable(n_caps);
  for (std::size_t h = 0; h < n_caps; ++h) {
    const double c = config.capacities_f[h];
    max_usable[h] =
        0.5 * c * (config.v_high * config.v_high - config.v_low * config.v_low);
  }
  auto bucket_of = [&](std::size_t h, double usable) -> std::size_t {
    const double frac = std::sqrt(std::max(0.0, usable) / max_usable[h]);
    const auto b = static_cast<long long>(frac * static_cast<double>(n_buckets));
    return static_cast<std::size_t>(
        std::clamp<long long>(b, 0, static_cast<long long>(n_buckets) - 1));
  };
  auto voltage_of = [&](std::size_t h, double usable) -> double {
    const double c = config.capacities_f[h];
    const double floor_j = 0.5 * c * config.v_low * config.v_low;
    return std::sqrt(2.0 * (std::max(0.0, usable) + floor_j) / c);
  };

  plan_.assign(n_periods, {});
  planned_misses_ = 0;
  dp_evaluations_ = 0;

  const std::size_t horizon =
      config_.horizon_periods == 0 ? n_periods : config_.horizon_periods;

  // Committed state carried across planning windows.
  std::size_t state_h = config.initial_cap;
  double state_usable = config.initial_usable_j;

  // One DP label per (layer, capacitor, bucket): dominance keeps the lowest
  // cost, ties broken toward more stored energy.
  struct Cell {
    double cost = kInf;
    double usable = 0.0;
    int prev_h = -1;
    int prev_b = -1;
    bool from_switch = false;     ///< Day-boundary capacitor change marker.
    std::uint64_t te_mask = 0;    ///< Decision that produced this label.
    float alpha = 0.0f;
    float consumed = 0.0f;
    std::uint8_t misses = 0;
  };
  auto relax = [](Cell& to, const Cell& candidate) {
    if (candidate.cost < to.cost - 1e-12 ||
        (std::fabs(candidate.cost - to.cost) <= 1e-12 &&
         candidate.usable > to.usable)) {
      to = candidate;
      return true;
    }
    return false;
  };
  auto mask_of = [](const std::vector<bool>& te) {
    std::uint64_t mask = 0;
    for (std::size_t n = 0; n < te.size(); ++n)
      if (te[n]) mask |= (std::uint64_t{1} << n);
    return mask;
  };

  for (std::size_t w0 = 0; w0 < n_periods; w0 += horizon) {
    const std::size_t w1 = std::min(n_periods, w0 + horizon);
    const std::size_t len = w1 - w0;

    // Forecast-noisy solar per period of the window (Fig. 10a knob).
    std::vector<std::vector<double>> window_solar(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t p = w0 + i;
      const double lookahead_days =
          static_cast<double>(i) / static_cast<double>(grid.n_periods);
      const double factor = forecast_factor(
          config_.noise_seed, w0, p, config_.forecast_noise * lookahead_days);
      window_solar[i] =
          trace.period_powers(p / grid.n_periods, p % grid.n_periods);
      for (double& s : window_solar[i]) s *= factor;
    }

    std::vector<std::vector<Cell>> layers(
        len + 1, std::vector<Cell>(n_caps * n_buckets));
    auto at = [&](std::vector<Cell>& layer, std::size_t h,
                  std::size_t b) -> Cell& { return layer[h * n_buckets + b]; };

    {
      Cell& start = at(layers[0], state_h, bucket_of(state_h, state_usable));
      start.cost = 0.0;
      start.usable = state_usable;
    }

    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t p = w0 + i;
      // Day-boundary capacitor re-selection: the abandoned capacitor's
      // energy is written off (the paper: inter-day carry-over is rare
      // because storage drains overnight anyway).
      if (config_.allow_cap_switch && p % grid.n_periods == 0) {
        for (std::size_t h = 0; h < n_caps; ++h)
          for (std::size_t b = 0; b < n_buckets; ++b) {
            const Cell from = at(layers[i], h, b);
            if (from.cost >= kInf) continue;
            for (std::size_t h2 = 0; h2 < n_caps; ++h2) {
              if (h2 == h) continue;
              Cell candidate;
              candidate.cost = from.cost;
              candidate.usable = 0.0;
              candidate.prev_h = static_cast<int>(h);
              candidate.prev_b = static_cast<int>(b);
              candidate.from_switch = true;
              relax(at(layers[i], h2, 0), candidate);
            }
          }
      }

      // Two-phase row expansion. Phase 1 derives every live label's option
      // set on the thread pool — pareto_options is pure, and the option
      // cache computes outside its lock, so concurrent derivation produces
      // the same vectors a serial sweep would. Phase 2 relaxes serially in
      // ascending (h, b) order, so label ties resolve exactly as before:
      // the DP outcome is bit-identical at every thread count.
      std::vector<std::size_t> live;
      live.reserve(n_caps * n_buckets);
      for (std::size_t h = 0; h < n_caps; ++h)
        for (std::size_t b = 0; b < n_buckets; ++b)
          if (at(layers[i], h, b).cost < kInf)
            live.push_back(h * n_buckets + b);

      std::vector<std::shared_ptr<const std::vector<PeriodOption>>>
          row_options(live.size());
      util::parallel_for(live.size(), [&](std::size_t k) {
        const std::size_t h = live[k] / n_buckets;
        const Cell& from = layers[i][live[k]];
        row_options[k] = options_for(window_solar[i], config.capacities_f[h],
                                     voltage_of(h, from.usable));
      });

      for (std::size_t k = 0; k < live.size(); ++k) {
        const std::size_t h = live[k] / n_buckets;
        const std::size_t b = live[k] % n_buckets;
        const Cell& from = at(layers[i], h, b);
        ++dp_evaluations_;
        const auto& options = row_options[k];
        for (const PeriodOption& opt : *options) {
          Cell candidate;
          candidate.cost = from.cost + static_cast<double>(opt.misses);
          candidate.usable = opt.final_usable_j;
          candidate.prev_h = static_cast<int>(h);
          candidate.prev_b = static_cast<int>(b);
          candidate.te_mask = mask_of(opt.te);
          candidate.alpha = static_cast<float>(opt.alpha);
          candidate.consumed = static_cast<float>(opt.consumed_cap_j);
          candidate.misses = static_cast<std::uint8_t>(opt.misses);
          relax(at(layers[i + 1], h, bucket_of(h, opt.final_usable_j)),
                candidate);
        }
      }
    }

    // Best terminal label; ties toward more stored energy.
    std::size_t best_h = 0, best_b = 0;
    double best_cost = kInf, best_usable = -1.0;
    for (std::size_t h = 0; h < n_caps; ++h)
      for (std::size_t b = 0; b < n_buckets; ++b) {
        const Cell& cell = at(layers[len], h, b);
        if (cell.cost < best_cost - 1e-12 ||
            (std::fabs(cell.cost - best_cost) <= 1e-12 &&
             cell.usable > best_usable)) {
          best_cost = cell.cost;
          best_usable = cell.usable;
          best_h = h;
          best_b = b;
        }
      }
    if (best_cost >= kInf)
      throw std::logic_error("OptimalScheduler: DP found no feasible path");

    // Backtrack: recover the plan; re-derive each path state's full option
    // set once more for the LUT (the paper's "optimal samples").
    std::size_t h = best_h, b = best_b;
    for (std::size_t i = len; i-- > 0;) {
      const Cell cell = at(layers[i + 1], h, b);
      const auto ph = static_cast<std::size_t>(cell.prev_h);
      const auto pb = static_cast<std::size_t>(cell.prev_b);
      const Cell& prev = at(layers[i], ph, pb);

      PlannedPeriod planned;
      planned.cap_index = ph;
      planned.te.assign(graph.size(), false);
      for (std::size_t n = 0; n < graph.size(); ++n)
        planned.te[n] = (cell.te_mask >> n) & 1u;
      planned.alpha = cell.alpha;
      planned.planned_misses = cell.misses;
      planned.planned_consumed_j = cell.consumed;
      // The quantized voltage is what the options were evaluated at; record
      // it so plan and LUT describe the evaluation that actually ran.
      planned.planned_v0 = quantized_v0(voltage_of(ph, prev.usable));
      plan_[w0 + i] = std::move(planned);
      planned_misses_ += cell.misses;

      double solar_energy = 0.0;
      for (double sw : window_solar[i]) solar_energy += sw * dt;
      const auto options = options_for(window_solar[i],
                                       config.capacities_f[ph],
                                       voltage_of(ph, prev.usable));
      for (const auto& sibling : *options) {
        LutEntry entry;
        entry.key = LutKey{
            static_cast<double>(sibling.misses) /
                static_cast<double>(std::max<std::size_t>(1, graph.size())),
            solar_energy, config.capacities_f[ph],
            quantized_v0(voltage_of(ph, prev.usable))};
        entry.consumed_j = sibling.consumed_cap_j;
        entry.alpha = sibling.alpha;
        entry.te = sibling.te;
        lut_.insert(std::move(entry));
      }

      h = ph;
      b = pb;
      // Unwind any day-boundary switch relaxation.
      while (at(layers[i], h, b).from_switch) {
        const Cell& cur = at(layers[i], h, b);
        h = static_cast<std::size_t>(cur.prev_h);
        b = static_cast<std::size_t>(cur.prev_b);
      }
    }

    state_h = best_h;
    state_usable = best_usable;
  }

  OBS_COUNTER_ADD("sched.dp.runs", 1);
  OBS_COUNTER_ADD("sched.dp.periods_planned", n_periods);
  OBS_COUNTER_ADD("sched.dp.evaluations", dp_evaluations_);
  OBS_COUNTER_ADD("sched.dp.planned_misses", planned_misses_);
  OBS_COUNTER_ADD("sched.dp.lut_entries", lut_.size());
}

nvp::PeriodPlan OptimalScheduler::begin_period(const nvp::PeriodContext& ctx) {
  const std::size_t flat = ctx.grid->flat_period(ctx.day, ctx.period);
  const PlannedPeriod& planned = plan_.at(flat);
  nvp::PeriodPlan plan;
  plan.select_cap = planned.cap_index;
  // The planned te drives prioritization inside schedule_slot; the engine
  // sees everything enabled so off-plan tasks may still scavenge solar
  // surplus the bucket-quantized plan did not anticipate.
  return plan;
}

std::vector<std::size_t> OptimalScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const auto& graph = *ctx.graph;
  const auto& state = *ctx.state;
  const double dt = ctx.grid->dt_s;
  const std::size_t flat = ctx.grid->flat_period(ctx.day, ctx.period);
  const std::vector<bool>& te = plan_.at(flat).te;

  // Oracle suffix energy within the remainder of this period.
  const std::size_t n_slots = ctx.grid->n_slots;
  const std::vector<double> solar = trace_->period_powers(ctx.day, ctx.period);

  const std::vector<bool> enabled =
      te.empty() ? std::vector<bool>(graph.size(), true) : te;

  // Oracle starvation forcing, as in the period optimizer.
  std::vector<bool> must_run(graph.size(), false);
  for (std::size_t id : state.live_ready_tasks(ctx.now_in_period_s)) {
    if (!enabled[id]) continue;
    const auto& t = graph.task(id);
    const auto dl_slot = std::min(
        n_slots,
        static_cast<std::size_t>(std::max(0.0, t.deadline_s / dt + 0.5)));
    double future_j = 0.0;
    for (std::size_t m = ctx.slot; m < dl_slot; ++m) future_j += solar[m] * dt;
    if (future_j * direct_eta_ < state.remaining_s(id) * t.power_w)
      must_run[id] = true;
  }

  const double direct_budget_w = ctx.solar_w * direct_eta_;
  const double max_load_w =
      ctx.pmu->supplyable_j(ctx.solar_w, *ctx.bank, dt) / dt;
  std::vector<std::size_t> chosen =
      load_match_decision(graph, state, ctx.now_in_period_s, dt, enabled,
                          direct_budget_w, must_run, max_load_w);
  double committed_w = 0.0;
  for (std::size_t id : chosen) committed_w += graph.task(id).power_w;

  // Scavenging pass: tasks outside the planned te may run on *free solar
  // only* (never storage), using NVPs the plan left idle. This can only
  // lower the realized DMR relative to the plan.
  std::vector<bool> off_plan(graph.size());
  for (std::size_t id = 0; id < graph.size(); ++id)
    off_plan[id] = te.empty() ? false : !te[id];
  const auto extra_by_nvp =
      candidates_by_nvp(graph, state, ctx.now_in_period_s, off_plan);
  std::vector<bool> nvp_busy(graph.nvp_count(), false);
  for (std::size_t id : chosen) nvp_busy[graph.task(id).nvp] = true;
  for (const auto& list : extra_by_nvp) {
    if (list.empty()) continue;
    const std::size_t head = list.front();
    if (nvp_busy[graph.task(head).nvp]) continue;
    if (committed_w + graph.task(head).power_w <= direct_budget_w) {
      chosen.push_back(head);
      committed_w += graph.task(head).power_w;
      nvp_busy[graph.task(head).nvp] = true;
    }
  }
  return chosen;
}

}  // namespace solsched::sched
