#include "sched/lut_scheduler.hpp"

#include <cmath>
#include <stdexcept>

#include "sched/intra_task.hpp"
#include "sched/lsa_inter.hpp"

namespace solsched::sched {

LutScheduler::LutScheduler(std::shared_ptr<const Lut> lut,
                           std::vector<double> capacities_f,
                           std::size_t n_tasks, ProposedConfig config)
    : lut_(std::move(lut)),
      capacities_f_(std::move(capacities_f)),
      n_tasks_(n_tasks),
      config_(config) {
  if (!lut_ || lut_->empty())
    throw std::invalid_argument("LutScheduler: empty LUT");
  if (capacities_f_.empty())
    throw std::invalid_argument("LutScheduler: empty bank layout");
}

nvp::PeriodPlan LutScheduler::begin_period(const nvp::PeriodContext& ctx) {
  // Measured solar energy of the previous period.
  double solar_energy = 0.0;
  for (double p : ctx.last_period_solar_w)
    solar_energy += p * ctx.grid->dt_s;

  // Query each capacitor's best entry at its own voltage; remember the one
  // promising the lowest DMR (ties resolved by the LUT's distance metric).
  const LutEntry* best = nullptr;
  std::size_t best_cap = ctx.bank->selected_index();
  for (std::size_t h = 0; h < capacities_f_.size(); ++h) {
    const LutEntry* hit = lut_->lookup_best_dmr(
        solar_energy, capacities_f_[h], ctx.bank->at(h).voltage_v());
    if (hit && (!best || hit->key.dmr < best->key.dmr)) {
      best = hit;
      best_cap = h;
    }
  }
  if (!best) return {};

  active_te_.assign(n_tasks_, true);
  if (best->te.size() == n_tasks_) active_te_ = best->te;
  if (config_.ignore_te) active_te_.assign(n_tasks_, true);

  nvp::PeriodPlan plan;
  const std::size_t current = ctx.bank->selected_index();
  if (best_cap != current &&
      ctx.bank->at(current).usable_energy_j() < config_.e_th_j)
    plan.select_cap = best_cap;  // Eq. 22 gate, as in the proposed policy.

  switch (config_.mode) {
    case ModeOverride::kAuto:
      intra_mode_ = std::fabs(1.0 - best->alpha) <= config_.delta;
      break;
    case ModeOverride::kInter: intra_mode_ = false; break;
    case ModeOverride::kIntra: intra_mode_ = true; break;
  }
  return plan;
}

std::vector<std::size_t> LutScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const double budget_w = ctx.solar_w * ctx.pmu->config().direct_eta;
  if (intra_mode_)
    return IntraTaskScheduler::match_load(ctx, active_te_, budget_w);
  return lsa_slot_decision(ctx, active_te_, config_.margin_slots);
}

}  // namespace solsched::sched
