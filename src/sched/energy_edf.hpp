// Energy-aware EDF zoo (registry entries "ccedf", "laedf", "greedy").
//
// Three classical energy-aware references adapted from DVS real-time
// scheduling (Pillai & Shin style CC-EDF / LA-EDF) and admission control to
// the harvesting NVP node. None of them is part of the paper's comparison
// set; they bracket the design space between the energy-oblivious EDF
// baseline and the storage-aware LSA/duty-cycle policies:
//   * CC-EDF: EDF order, but admission throttled to the *required* average
//     power of the live task set (cycle-conserving — completed work lowers
//     the requirement for the rest of the period);
//   * LA-EDF: EDF order with aggregate look-ahead — defer all non-forced
//     work while stored energy plus the harvest forecast covers the
//     remaining demand, switch to eager EDF the moment it no longer does;
//   * greedy feasibility: per-period admission control that enables jobs in
//     deadline order only while their energy demand fits the harvest
//     forecast plus stored energy, skipping infeasible jobs outright.
// All three are pure functions of (context, config): no RNG, no
// cross-period hidden state beyond what begin_period recomputes, so they
// are bit-identical at any thread count like every other policy.
#pragma once

#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Shared tuning knobs of the energy-aware EDF variants.
struct EnergyEdfConfig {
  double direct_eta = 0.92;  ///< Assumed direct-channel efficiency on
                             ///< forecast harvest (matches duty-cycle).
  double reserve = 0.05;     ///< Safety margin: fraction of demand kept in
                             ///< hand before look-ahead allows deferral.
};

/// Cycle-conserving EDF: per-NVP EDF heads, admitted while the committed
/// load stays within the live set's required average power (remaining
/// energy over time-to-deadline), deadline-forced tasks always first.
class CcEdfScheduler final : public nvp::Scheduler {
 public:
  explicit CcEdfScheduler(EnergyEdfConfig config = {}) : config_(config) {}

  std::string name() const override { return "ccedf"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

 private:
  EnergyEdfConfig config_;
};

/// Look-ahead EDF: while deliverable storage plus the WCMA forecast up to
/// the latest live deadline covers the remaining energy demand (with a
/// reserve margin), only deadline-forced tasks run; once coverage fails,
/// EDF heads run eagerly up to the PMU's supplyable power.
class LaEdfScheduler final : public nvp::Scheduler {
 public:
  explicit LaEdfScheduler(EnergyEdfConfig config = {}) : config_(config) {}

  std::string name() const override { return "laedf"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

 private:
  EnergyEdfConfig config_;
};

/// Greedy energy-feasibility admission: at each period start, enable tasks
/// in deadline order (with their dependency closures) while the cumulative
/// energy demand fits the period's forecast harvest plus stored energy;
/// jobs that do not fit are skipped for the period. Enabled tasks run EDF
/// per NVP, shed to the supplyable load.
class GreedyFeasibleScheduler final : public nvp::Scheduler {
 public:
  explicit GreedyFeasibleScheduler(EnergyEdfConfig config = {})
      : config_(config) {}

  std::string name() const override { return "greedy"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

  /// The admission budget computed for the current period (J).
  double current_budget_j() const noexcept { return budget_j_; }

 private:
  EnergyEdfConfig config_;
  double budget_j_ = 0.0;
  std::vector<bool> enabled_;
};

}  // namespace solsched::sched
