// The offline lookup table of Eq. 13.
//
// Maps (DMR target, period solar energy, capacitor, initial voltage) to the
// minimum consumed capacitor energy E^c, the executed-task vector te and the
// scheduling-pattern index α. The offline optimizer populates it; queries
// use the closest stored input when an exact match is absent, exactly as the
// paper approximates real inputs by their nearest LUT entry.
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::sched {

/// LUT input tuple.
struct LutKey {
  double dmr = 0.0;            ///< DMR_{i,j} of the option.
  double solar_energy_j = 0.0; ///< Σ P^s Δt over the period.
  double capacity_f = 0.0;     ///< C_{h,i}.
  double v0 = 0.0;             ///< V^sc at the period start.
};

/// LUT output tuple (plus its key for inspection).
struct LutEntry {
  LutKey key;
  double consumed_j = 0.0;  ///< Minimum E^c.
  double alpha = 0.0;       ///< Pattern-selection index (Eq. 18).
  std::vector<bool> te;     ///< Executed-task bits.
};

/// Nearest-neighbour lookup table over normalized key space.
class Lut {
 public:
  /// Normalization scales: distances divide each key component by these, so
  /// heterogeneous units compare sensibly. Defaults suit the node's ranges.
  explicit Lut(double dmr_scale = 1.0, double solar_scale = 50.0,
               double cap_scale = 50.0, double volt_scale = 5.0);

  void insert(LutEntry entry);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<LutEntry>& entries() const noexcept { return entries_; }

  /// Closest entry by normalized Euclidean distance; nullptr when empty.
  const LutEntry* lookup(const LutKey& key) const;

  /// Closest entry restricted to a capacity (the common online query:
  /// the capacitor is known, match on the remaining dims). Falls back to an
  /// unrestricted lookup when no entry has that capacity.
  const LutEntry* lookup_for_capacity(const LutKey& key) const;

  /// Online planning query: among entries near (solar, capacity, v0) —
  /// ignoring the DMR dimension — returns the one promising the lowest
  /// DMR, trading distance against DMR with the given weight. nullptr when
  /// empty.
  const LutEntry* lookup_best_dmr(double solar_energy_j, double capacity_f,
                                  double v0, double dmr_weight = 1.0) const;

 private:
  double distance(const LutKey& a, const LutKey& b) const noexcept;

  double dmr_scale_, solar_scale_, cap_scale_, volt_scale_;
  std::vector<LutEntry> entries_;
};

}  // namespace solsched::sched
