#include "sched/period_option_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/metrics.hpp"

namespace solsched::sched {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t word) noexcept {
  // Byte-wise FNV-1a over the 8 bytes of `word`.
  for (int b = 0; b < 8; ++b) {
    h ^= (word >> (8 * b)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t bits_of(double x) noexcept {
  // Collapse -0.0 onto +0.0 so numerically equal keys hash equally.
  if (x == 0.0) x = 0.0;
  return std::bit_cast<std::uint64_t>(x);
}

}  // namespace

PeriodOptionCache::PeriodOptionCache(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

std::uint64_t PeriodOptionCache::hash_solar(const std::vector<double>& solar_w,
                                            double capacity_f, double v0) {
  std::uint64_t h = kFnvOffset;
  for (double s : solar_w) h = fnv_mix(h, bits_of(s));
  h = fnv_mix(h, bits_of(capacity_f));
  h = fnv_mix(h, bits_of(v0));
  return h;
}

std::size_t PeriodOptionCache::KeyHash::operator()(
    const Key& key) const noexcept {
  return static_cast<std::size_t>(key.solar_hash);
}

std::shared_ptr<const std::vector<PeriodOption>>
PeriodOptionCache::lookup_or_compute(
    const std::vector<double>& solar_w, double capacity_f, double v0,
    const std::function<std::vector<PeriodOption>()>& compute) {
  Key key;
  key.solar_hash = hash_solar(solar_w, capacity_f, v0);
  key.capacity_f = capacity_f;
  key.v0 = v0;
  key.solar_w = solar_w;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      OBS_COUNTER_ADD("sched.option_cache.hits", 1);
      return it->second;
    }
    ++stats_.misses;
    OBS_COUNTER_ADD("sched.option_cache.misses", 1);
  }

  // Computed outside the lock: evaluations dominate and may themselves use
  // the thread pool. A concurrent duplicate compute is possible but both
  // sides produce the identical value (pareto_options is pure).
  auto value = std::make_shared<const std::vector<PeriodOption>>(compute());

  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = map_.emplace(key, value);
  if (inserted) {
    insertion_order_.push_back(std::move(key));
    while (map_.size() > max_entries_) {
      map_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      ++stats_.evictions;
      OBS_COUNTER_ADD("sched.option_cache.evictions", 1);
    }
  }
  stats_.entries = map_.size();
  return it->second;
}

OptionCacheStats PeriodOptionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void PeriodOptionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  insertion_order_.clear();
  stats_ = OptionCacheStats{};
}

double PeriodOptionCache::quantize_v0(double v0, double v_low, double v_high,
                                      std::size_t steps) {
  if (steps == 0 || v_high <= v_low) return v0;
  // The DP buckets usable energy by frac = sqrt(usable / max_usable); v0
  // maps onto that axis independently of capacitance:
  //   frac^2 = (v0^2 - v_low^2) / (v_high^2 - v_low^2).
  const double span = v_high * v_high - v_low * v_low;
  const double frac2 =
      std::clamp((v0 * v0 - v_low * v_low) / span, 0.0, 1.0);
  const double frac = std::sqrt(frac2);
  const double q = std::round(frac * static_cast<double>(steps)) /
                   static_cast<double>(steps);
  return std::sqrt(v_low * v_low + span * q * q);
}

}  // namespace solsched::sched
