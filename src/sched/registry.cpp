#include "sched/registry.hpp"

#include <stdexcept>
#include <utility>

#include "sched/asap.hpp"
#include "sched/duty_cycle.hpp"
#include "sched/edf.hpp"
#include "sched/energy_edf.hpp"
#include "sched/intra_task.hpp"
#include "sched/lsa_inter.hpp"

namespace solsched::sched {
namespace {

/// Context-free entry for the stateless baselines.
template <typename S>
SchedulerInfo simple(std::string id, std::string display_name) {
  SchedulerInfo info;
  info.id = std::move(id);
  info.display_name = std::move(display_name);
  info.factory = [](const SchedulerContext&) -> std::unique_ptr<nvp::Scheduler> {
    return std::make_unique<S>();
  };
  return info;
}

}  // namespace

Registry::Registry() {
  // Registration order is the comparison runner's row order. The first
  // seven entries replicate the pre-registry hard-wired order exactly —
  // existing campaign journals depend on it — so new policies must only
  // ever be appended.
  entries_.push_back(simple<AsapScheduler>("asap", "ASAP"));
  entries_.push_back(simple<EdfScheduler>("edf", "EDF"));
  entries_.push_back(simple<DutyCycleScheduler>("duty", "Duty-cycle"));
  entries_.push_back(simple<LsaInterScheduler>("inter", "Inter-task"));
  entries_.push_back(simple<IntraTaskScheduler>("intra", "Intra-task"));

  SchedulerInfo proposed;
  proposed.id = "proposed";
  proposed.display_name = "Proposed";
  proposed.needs_controller = true;
  proposed.sized_bank = true;
  proposed.factory =
      [](const SchedulerContext& ctx) -> std::unique_ptr<nvp::Scheduler> {
    if (!ctx.model)
      throw std::invalid_argument(
          "sched::Registry: \"proposed\" needs a trained controller "
          "(SchedulerContext::model is null)");
    auto policy = std::make_unique<ProposedScheduler>(*ctx.model, ctx.online);
    policy->attach_faults(ctx.faults);
    return policy;
  };
  entries_.push_back(std::move(proposed));

  SchedulerInfo optimal;
  optimal.id = "optimal";
  optimal.display_name = "Optimal";
  optimal.sized_bank = true;
  optimal.factory =
      [](const SchedulerContext& ctx) -> std::unique_ptr<nvp::Scheduler> {
    return std::make_unique<OptimalScheduler>(ctx.dp);
  };
  entries_.push_back(std::move(optimal));

  // The energy-aware zoo: display name == id (no paper-era display string
  // to preserve), so journals and reports key these rows by canonical id.
  entries_.push_back(simple<CcEdfScheduler>("ccedf", "ccedf"));
  entries_.push_back(simple<LaEdfScheduler>("laedf", "laedf"));
  entries_.push_back(simple<GreedyFeasibleScheduler>("greedy", "greedy"));
}

const Registry& Registry::global() {
  static const Registry instance;
  return instance;
}

const SchedulerInfo* Registry::find(const std::string& id) const noexcept {
  for (const SchedulerInfo& info : entries_)
    if (info.id == id) return &info;
  return nullptr;
}

const SchedulerInfo& Registry::at(const std::string& id) const {
  if (const SchedulerInfo* info = find(id)) return *info;
  throw std::out_of_range("sched::Registry: unknown scheduler id \"" + id +
                          "\" (known: " + known_ids() + ")");
}

std::vector<std::string> Registry::ids() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const SchedulerInfo& info : entries_) out.push_back(info.id);
  return out;
}

std::string Registry::known_ids() const {
  std::string out;
  for (const SchedulerInfo& info : entries_) {
    if (!out.empty()) out += ", ";
    out += info.id;
  }
  return out;
}

std::unique_ptr<nvp::Scheduler> make_scheduler(const std::string& id,
                                               const SchedulerContext& ctx) {
  return Registry::global().at(id).factory(ctx);
}

}  // namespace solsched::sched
