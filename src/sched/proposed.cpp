#include "sched/proposed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "sched/intra_task.hpp"
#include "sched/lsa_inter.hpp"
#include "sched/sched_util.hpp"
#include "util/mathx.hpp"

namespace solsched::sched {

ProposedScheduler::ProposedScheduler(ProposedModel model,
                                     ProposedConfig config)
    : model_(std::move(model)), config_(config) {
  if (!model_.dbn) throw std::invalid_argument("ProposedScheduler: null DBN");
  if (!model_.input_norm.fitted())
    throw std::invalid_argument("ProposedScheduler: unfitted normalizer");
}

ann::Vector ProposedScheduler::build_input(const nvp::PeriodContext& ctx,
                                           std::size_t n_slots) {
  ann::Vector x;
  x.reserve(n_slots + ctx.bank->size() + 1);
  // Previous period's solar, zero-padded for the very first period.
  for (std::size_t m = 0; m < n_slots; ++m)
    x.push_back(m < ctx.last_period_solar_w.size()
                    ? ctx.last_period_solar_w[m]
                    : 0.0);
  for (double v : ctx.bank->voltages()) x.push_back(v);
  x.push_back(ctx.accumulated_dmr);
  return x;
}

nvp::PeriodPlan lsa_fallback_plan(const storage::CapacitorBank& bank,
                                  FallbackReason reason) {
  nvp::PeriodPlan plan;
  plan.used_fallback = true;
  plan.fallback_code = static_cast<int>(reason);
  // Keep the current capacitor unless it is stuck dead — then move to the
  // fullest live one so the baseline has storage to work with.
  const std::size_t current = bank.selected_index();
  if (bank.at(current).dead()) {
    std::size_t best = current;
    double best_e = -1.0;
    for (std::size_t h = 0; h < bank.size(); ++h) {
      if (bank.at(h).dead()) continue;
      const double e = bank.at(h).usable_energy_j();
      if (e > best_e) {
        best_e = e;
        best = h;
      }
    }
    if (best != current) plan.select_cap = best;
  }
  return plan;
}

nvp::PeriodPlan ProposedScheduler::fallback_plan(const nvp::PeriodContext& ctx,
                                                 FallbackReason reason) {
  ++fallback_count_;
  last_fallback_ = reason;
  // Empty te = all tasks; inter mode = the plain LSA baseline. With the
  // default margin this period is scheduled exactly as LsaInterScheduler
  // would (no scavenging pass runs, since nothing is off-te).
  active_te_.clear();
  intra_mode_ = false;

  nvp::PeriodPlan plan = lsa_fallback_plan(*ctx.bank, reason);
  OBS_COUNTER_ADD("sched.proposed.fallbacks", 1);
  return plan;
}

nvp::PeriodPlan ProposedScheduler::begin_period(const nvp::PeriodContext& ctx) {
  const std::size_t n_caps = model_.capacities_f.size();
  if (ctx.bank->size() != n_caps)
    throw std::logic_error("ProposedScheduler: bank/model capacitor mismatch");

  // --- Coarse-grained DBN analysis -----------------------------------
  const ann::Vector raw = build_input(ctx, model_.n_slots);
  const ann::Vector y = model_.dbn->predict(model_.input_norm.transform(raw));
  if (y.size() != n_caps + 1 + model_.n_tasks)
    throw std::logic_error("ProposedScheduler: DBN output width mismatch");

  // Decode: capacitor one-hot argmax, α de-squashed, te bits thresholded.
  std::size_t cap = 0;
  for (std::size_t h = 1; h < n_caps; ++h)
    if (y[h] > y[cap]) cap = h;
  double alpha = util::clamp(y[n_caps], 0.0, 1.0) * model_.alpha_cap;
  std::vector<bool> te(model_.n_tasks);
  for (std::size_t n = 0; n < model_.n_tasks; ++n)
    te[n] = config_.ignore_te || y[n_caps + 1 + n] > 0.5;

  // Injected controller corruption, applied *before* validation so the
  // degradation path sees exactly what a glitched controller would hand it.
  if (faults_ != nullptr && faults_->active()) {
    const std::size_t flat = ctx.grid->flat_period(ctx.day, ctx.period);
    switch (faults_->controller_fault(flat)) {
      case fault::ControllerFault::kNone: break;
      case fault::ControllerFault::kNonFinite:
        alpha = std::numeric_limits<double>::quiet_NaN();
        break;
      case fault::ControllerFault::kAlphaRange:
        alpha = -4.0 * model_.alpha_cap - 1.0;
        break;
      case fault::ControllerFault::kEmptyTe:
        te.assign(model_.n_tasks, false);
        break;
      case fault::ControllerFault::kCapRange:
        cap = n_caps + 7;
        break;
    }
  }

  last_ = Decoded{cap, alpha, te};
  active_te_ = te;

  // --- Validation and graceful degradation (DESIGN.md §11) -----------
  // A plan that fails any check is abandoned for this period in favour of
  // the LSA inter-task baseline over all tasks: predictable, model-free,
  // and strictly better than acting on a corrupt plan. Guarded by an
  // active injector: natural decodes are structurally in range already
  // (alpha clamped, cap argmax-bounded, a degenerate te still scavenges),
  // so fault-free runs stay bit-identical to the scheduler without these
  // hooks, as the simulator's no-plan contract promises.
  if (faults_ != nullptr && faults_->active()) {
    FallbackReason reason = FallbackReason::kNone;
    if (!std::isfinite(alpha)) {
      reason = FallbackReason::kNonFinite;
    } else if (alpha < 0.0 || alpha > model_.alpha_cap) {
      reason = FallbackReason::kAlphaRange;
    } else if (cap >= n_caps || ctx.bank->at(cap).dead()) {
      reason = FallbackReason::kDeadCap;
    } else if (model_.n_tasks > 0 &&
               std::none_of(te.begin(), te.end(), [](bool b) { return b; })) {
      reason = FallbackReason::kDegenerateTe;
    }
    if (reason != FallbackReason::kNone) return fallback_plan(ctx, reason);
  }

  // --- Capacitor selection -------------------------------------------
  // Eq. 22 gate: switching away from a charged capacitor wastes it, so a
  // switch is allowed only when the selected one is nearly drained — plus
  // the greedy-bank extension for full capacitors under surplus.
  nvp::PeriodPlan plan;
  const std::size_t current = ctx.bank->selected_index();
  const double current_energy_j = ctx.bank->at(current).usable_energy_j();
  if (current_energy_j < config_.e_th_j) {
    std::size_t target = cap;
    if (config_.greedy_bank) {
      // Drain the bank capacitor by capacitor: pick the fullest; fall back
      // to the DBN's choice when the whole bank is empty.
      std::size_t fullest = 0;
      for (std::size_t h = 1; h < ctx.bank->size(); ++h)
        if (ctx.bank->at(h).usable_energy_j() >
            ctx.bank->at(fullest).usable_energy_j())
          fullest = h;
      if (ctx.bank->at(fullest).usable_energy_j() >= config_.e_th_j)
        target = fullest;
    }
    if (target != current) plan.select_cap = target;
  } else if (config_.greedy_bank && alpha < 1.0) {
    // Surplus period and the capacitor is nearly full: bank the rest of
    // the harvest in the emptiest-headroom-rich capacitor instead of
    // spilling it. The charged capacitor keeps its energy for later.
    const auto& sel = ctx.bank->at(current);
    if (sel.headroom_j() <
        config_.fill_fraction * sel.max_usable_energy_j()) {
      std::size_t roomiest = current;
      for (std::size_t h = 0; h < ctx.bank->size(); ++h)
        if (ctx.bank->at(h).headroom_j() >
            ctx.bank->at(roomiest).headroom_j())
          roomiest = h;
      if (roomiest != current) plan.select_cap = roomiest;
    }
  }

  // --- δ rule: pick the fine-grained mode for this period. -----------
  switch (config_.mode) {
    case ModeOverride::kAuto:
      intra_mode_ = std::fabs(1.0 - alpha) <= config_.delta;
      break;
    case ModeOverride::kInter: intra_mode_ = false; break;
    case ModeOverride::kIntra: intra_mode_ = true; break;
  }

  // The te set steers prioritization inside schedule_slot; the engine sees
  // everything enabled so off-te tasks may scavenge free solar surplus
  // (mirrors the optimal scheduler's execution and makes a mispredicted te
  // recoverable).
  return plan;
}

std::vector<std::size_t> ProposedScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const auto& graph = *ctx.graph;
  const double direct_budget_w = ctx.solar_w * ctx.pmu->config().direct_eta;

  std::vector<std::size_t> chosen;
  if (intra_mode_)
    chosen = IntraTaskScheduler::match_load(ctx, active_te_, direct_budget_w);
  else
    chosen = lsa_slot_decision(ctx, active_te_, config_.margin_slots);

  // Scavenging pass: tasks outside te may run on *free solar only*, on NVPs
  // the te set left idle — never on stored energy, so the DBN's long-term
  // energy plan is unaffected.
  double committed_w = 0.0;
  for (std::size_t id : chosen) committed_w += graph.task(id).power_w;
  std::vector<bool> off_te(graph.size());
  bool any_off = false;
  for (std::size_t id = 0; id < graph.size(); ++id) {
    off_te[id] = !active_te_.empty() && !active_te_[id];
    any_off = any_off || off_te[id];
  }
  if (any_off) {
    const auto extra = candidates_by_nvp(graph, *ctx.state,
                                         ctx.now_in_period_s, off_te);
    std::vector<bool> nvp_busy(graph.nvp_count(), false);
    for (std::size_t id : chosen) nvp_busy[graph.task(id).nvp] = true;
    for (const auto& list : extra) {
      if (list.empty()) continue;
      const std::size_t head = list.front();
      if (nvp_busy[graph.task(head).nvp]) continue;
      if (committed_w + graph.task(head).power_w <= direct_budget_w) {
        chosen.push_back(head);
        committed_w += graph.task(head).power_w;
        nvp_busy[graph.task(head).nvp] = true;
      }
    }
  }
  return chosen;
}

}  // namespace solsched::sched
