// The proposed long-term deadline-aware online scheduler (Sec. 5).
//
// Coarse grain, once per period: a trained DBN maps (previous period's solar
// slots, all capacitor voltages, accumulated DMR) to (capacitor of the day,
// pattern index α, task subset te). The capacitor switch is gated by the
// threshold rule of Eq. 22 (only switch away from a capacitor once its
// stored energy drops below E_th). Fine grain, per slot: if |1 - α| > δ the
// cheap inter-task (LSA) policy runs, otherwise the intra-task load-matching
// policy (Sec. 5.2).
#pragma once

#include <cstddef>
#include <memory>

#include "ann/dbn.hpp"
#include "ann/normalizer.hpp"
#include "fault/fault_injector.hpp"
#include "nvp/scheduler.hpp"

namespace solsched::sched {

/// Why the proposed scheduler abandoned the DBN's plan for a period
/// (DESIGN.md §11). Stored in PeriodPlan::fallback_code.
enum class FallbackReason : int {
  kNone = 0,
  kNonFinite = 1,     ///< Decoded α (or the raw output) is NaN/inf.
  kAlphaRange = 2,    ///< α outside [0, alpha_cap].
  kDegenerateTe = 3,  ///< te enables no task at all.
  kDeadCap = 4,       ///< Decoded capacitor out of range or stuck-dead.
};

/// The degraded-mode period plan shared by every consumer of FallbackReason
/// (ProposedScheduler and the solsched-serve engine): LSA inter-task over
/// all tasks, keeping the current capacitor unless it is stuck dead — then
/// moving to the fullest live one so the baseline has storage to work with.
/// Pure function of the bank, so online and served fallbacks are
/// bit-identical by construction.
nvp::PeriodPlan lsa_fallback_plan(const storage::CapacitorBank& bank,
                                  FallbackReason reason);

/// Trained artifacts the online policy needs (produced by core::Pipeline).
struct ProposedModel {
  std::shared_ptr<const ann::Dbn> dbn;  ///< Input width N_s + H + 1.
  ann::Normalizer input_norm;           ///< Over the raw input vector.
  std::vector<double> capacities_f;     ///< Bank layout the DBN indexes into.
  std::size_t n_slots = 0;              ///< N_s the model was trained with.
  std::size_t n_tasks = 0;              ///< N of the benchmark.
  double alpha_cap = 3.0;               ///< α is squashed to [0, alpha_cap].
};

/// Fine-grained mode forcing, used by ablation studies.
enum class ModeOverride {
  kAuto,   ///< Use the δ rule on the DBN's α (the paper's behaviour).
  kInter,  ///< Always inter-task (lazy whole-task) scheduling.
  kIntra,  ///< Always intra-task load matching.
};

/// Online thresholds (Sec. 5.2) and ablation switches.
struct ProposedConfig {
  double e_th_j = 20.0;       ///< Eq. 22 switch threshold (~2 periods of a
                              ///< typical 10 J/period workload).
  double delta = 0.5;         ///< Pattern-selection threshold on |1 - α|.
  double margin_slots = 1.0;  ///< Forced-start margin of the inter mode.
  /// Extension beyond the paper (see DESIGN.md): exploit the whole
  /// distributed bank online. When a switch is allowed (Eq. 22), prefer the
  /// *fullest* capacitor so night service drains the bank capacitor by
  /// capacitor; and when the selected capacitor is nearly full while the
  /// period is in surplus (α < 1), move to the capacitor with the most
  /// headroom so midday harvest banks across several capacitors.
  bool greedy_bank = true;
  double fill_fraction = 0.12;  ///< "Nearly full" headroom threshold.
  bool ignore_te = false;     ///< Ablation: run all tasks, ignore DBN's te.
  ModeOverride mode = ModeOverride::kAuto;  ///< Ablation: force a mode.
};

/// DBN-driven scheduler.
class ProposedScheduler final : public nvp::Scheduler {
 public:
  ProposedScheduler(ProposedModel model, ProposedConfig config = {});

  std::string name() const override { return "Proposed"; }
  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override;
  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override;

  /// Decoded DBN outputs of the current period (visible for tests/ablation).
  struct Decoded {
    std::size_t cap_index = 0;
    double alpha = 0.0;
    std::vector<bool> te;
  };
  const Decoded& last_decision() const noexcept { return last_; }
  bool intra_mode() const noexcept { return intra_mode_; }

  /// Attaches a fault injector whose controller-fault table corrupts the
  /// decoded DBN output (testing the degradation path); null detaches. The
  /// injector is read-only and must outlive the scheduler's use of it.
  void attach_faults(const fault::FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Periods in which the DBN plan was rejected and the LSA inter-task
  /// baseline was substituted, and the most recent reason.
  std::size_t fallback_count() const noexcept { return fallback_count_; }
  FallbackReason last_fallback() const noexcept { return last_fallback_; }

  /// Builds the raw (unnormalized) DBN input vector from period context.
  static ann::Vector build_input(const nvp::PeriodContext& ctx,
                                 std::size_t n_slots);

 private:
  /// Degraded-mode plan: LSA inter-task over all tasks for this period.
  nvp::PeriodPlan fallback_plan(const nvp::PeriodContext& ctx,
                                FallbackReason reason);

  ProposedModel model_;
  ProposedConfig config_;
  Decoded last_;
  std::vector<bool> active_te_;
  bool intra_mode_ = false;
  const fault::FaultInjector* faults_ = nullptr;
  std::size_t fallback_count_ = 0;
  FallbackReason last_fallback_ = FallbackReason::kNone;
};

}  // namespace solsched::sched
