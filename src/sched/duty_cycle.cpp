#include "sched/duty_cycle.hpp"

#include <algorithm>

#include "sched/sched_util.hpp"

namespace solsched::sched {

void DutyCycleScheduler::begin_trace(const task::TaskGraph&,
                                     const nvp::NodeConfig&,
                                     const solar::SolarTrace&) {
  harvest_estimate_j_ = 0.0;
  harvest_seen_ = false;
  budget_j_ = 0.0;
  enabled_.clear();
}

nvp::PeriodPlan DutyCycleScheduler::begin_period(
    const nvp::PeriodContext& ctx) {
  const auto& graph = *ctx.graph;

  // Update the harvest estimate from the measured previous period.
  double last_j = 0.0;
  for (double p : ctx.last_period_solar_w) last_j += p * ctx.grid->dt_s;
  if (!ctx.last_period_solar_w.empty()) {
    harvest_estimate_j_ =
        harvest_seen_
            ? config_.harvest_ewma * last_j +
                  (1.0 - config_.harvest_ewma) * harvest_estimate_j_
            : last_j;
    harvest_seen_ = true;
  }

  // Budget: expected usable harvest plus a bounded storage withdrawal.
  budget_j_ = harvest_estimate_j_ * config_.direct_eta +
              config_.storage_draw * ctx.bank->selected().deliverable_j();

  // Enable tasks in deadline order (most urgent first) while they fit; a
  // task's dependencies must already be enabled or it cannot complete.
  std::vector<std::size_t> order(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.task(a).deadline_s < graph.task(b).deadline_s;
  });

  enabled_.assign(graph.size(), false);
  double committed_j = 0.0;
  for (std::size_t id : order) {
    // Cost of this task plus any not-yet-enabled dependencies; `visited`
    // keeps shared predecessors from being counted twice.
    double extra = 0.0;
    std::vector<bool> visited(graph.size(), false);
    std::vector<std::size_t> closure{id};
    visited[id] = true;
    for (std::size_t i = 0; i < closure.size(); ++i) {
      const std::size_t t = closure[i];
      if (enabled_[t]) continue;
      extra += graph.task(t).energy_j();
      for (std::size_t p : graph.predecessors(t)) {
        if (!enabled_[p] && !visited[p]) {
          visited[p] = true;
          closure.push_back(p);
        }
      }
    }
    if (committed_j + extra <= budget_j_) {
      for (std::size_t t : closure) enabled_[t] = true;
      committed_j += extra;
    }
  }

  nvp::PeriodPlan plan;
  plan.tasks_enabled = enabled_;
  return plan;
}

std::vector<std::size_t> DutyCycleScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  // EDF over the enabled subset, shedding to the supplyable load.
  const double max_load_w =
      ctx.pmu->supplyable_j(ctx.solar_w, *ctx.bank, ctx.grid->dt_s) /
      ctx.grid->dt_s;
  const auto by_nvp = candidates_by_nvp(*ctx.graph, *ctx.state,
                                        ctx.now_in_period_s, enabled_);
  std::vector<std::size_t> chosen;
  double committed_w = 0.0;
  for (const auto& list : by_nvp) {
    if (list.empty()) continue;
    const std::size_t head = list.front();
    if (committed_w + ctx.graph->task(head).power_w <= max_load_w) {
      chosen.push_back(head);
      committed_w += ctx.graph->task(head).power_w;
    }
  }
  return chosen;
}

}  // namespace solsched::sched
