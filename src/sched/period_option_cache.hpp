// Memoization of PeriodOptimizer::pareto_options.
//
// The DP oracle evaluates the same (period solar, capacity, start voltage)
// triple repeatedly: every occupied (capacitor, bucket) cell of a layer
// calls pareto_options on that layer's solar vector, and the backtrack
// re-derives the option set of every path state verbatim for the Eq. 13
// LUT. The cache turns those repeats into lookups.
//
// Key = (FNV-1a hash of the solar slot bit patterns, capacity, v0). The
// caller is responsible for quantizing v0 *before* both the lookup and the
// underlying evaluation (OptimalConfig::v0_quant_steps), so a cached run is
// bit-identical to an uncached run by construction: the cache only ever
// returns what pareto_options would have computed for the exact same
// arguments. Full keys (including the solar vector) are stored and compared
// so hash collisions cannot alias entries.
//
// Thread safety: all operations take an internal mutex, so a cache may be
// shared across schedulers (e.g. the training oracle and the comparison
// run's Optimal row) even when policy rows execute on the thread pool.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/period_optimizer.hpp"

namespace solsched::sched {

/// Hit/miss/eviction counters, surfaced next to dp_evaluations_.
struct OptionCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Bounded memo table of per-period Pareto option sets.
class PeriodOptionCache {
 public:
  /// `max_entries` bounds memory; the oldest insertion is evicted first.
  explicit PeriodOptionCache(std::size_t max_entries = 1 << 16);

  /// Returns the cached option set for (solar_w, capacity_f, v0), calling
  /// `compute` on a miss. The returned pointer stays valid after eviction
  /// (entries are shared_ptr-owned).
  std::shared_ptr<const std::vector<PeriodOption>> lookup_or_compute(
      const std::vector<double>& solar_w, double capacity_f, double v0,
      const std::function<std::vector<PeriodOption>()>& compute);

  OptionCacheStats stats() const;
  void clear();

  /// Snaps v0 onto a grid of `steps` points spanning [v_low, v_high],
  /// uniform in the DP's sqrt-usable-energy measure (the bucket axis), so
  /// "bucket resolution" means steps == energy_buckets. steps == 0 returns
  /// v0 unchanged. Idempotent: quantize(quantize(x)) == quantize(x).
  static double quantize_v0(double v0, double v_low, double v_high,
                            std::size_t steps);

 private:
  struct Key {
    std::uint64_t solar_hash = 0;
    double capacity_f = 0.0;
    double v0 = 0.0;
    std::vector<double> solar_w;  ///< Full vector: collision-proof equality.

    bool operator==(const Key& other) const {
      return solar_hash == other.solar_hash &&
             capacity_f == other.capacity_f && v0 == other.v0 &&
             solar_w == other.solar_w;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  static std::uint64_t hash_solar(const std::vector<double>& solar_w,
                                  double capacity_f, double v0);

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::unordered_map<Key, std::shared_ptr<const std::vector<PeriodOption>>,
                     KeyHash>
      map_;
  std::deque<Key> insertion_order_;  ///< FIFO eviction queue.
  OptionCacheStats stats_;
};

}  // namespace solsched::sched
