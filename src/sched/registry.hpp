// Pluggable scheduler registry: canonical id -> {display name, factory}.
//
// Every policy the experiment layer, campaigns or the serving daemon can
// instantiate lives behind one name->factory table, so the set of known
// schedulers is defined exactly once. The campaign spec's validation list,
// the comparison runner's row loop and `core::make_proposed` all derive
// from it — adding a scheduler means adding one registry entry (plus its
// class) and every sweep, journal and report picks it up for free.
//
// Ids are the canonical vocabulary ("inter", "edf", ...): campaign axes,
// `row_of` lookups and error messages all speak ids. Display names
// (`Scheduler::name()`, e.g. "Inter-task") remain what human-facing tables
// and the journal's `algo` field print — the original trio keeps its
// paper-era display names so pre-registry journals stay byte-identical,
// while new zoo entries use their id as the display name.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "nvp/scheduler.hpp"
#include "sched/optimal.hpp"
#include "sched/proposed.hpp"

namespace solsched::sched {

/// Everything any factory may need. Plain pointers are non-owning and may
/// be null; a factory whose entry is marked `needs_controller` requires
/// `model` to be set. Factories copy what they keep (the model by value,
/// the DP config including its shared cache), so the context itself only
/// needs to live for the factory call — but `faults` is retained by the
/// proposed policy and must outlive the built scheduler.
struct SchedulerContext {
  const ProposedModel* model = nullptr;  ///< Trained DBN; null = untrained.
  ProposedConfig online{};               ///< Thresholds for "proposed".
  OptimalConfig dp{};                    ///< DP knobs (incl. shared cache).
  /// Controller-corruption stream for the proposed policy (DESIGN.md §11);
  /// the simulator-level fault tables are passed to nvp::simulate
  /// separately, so only "proposed" consumes this here.
  const fault::FaultInjector* faults = nullptr;
};

/// One registered policy.
struct SchedulerInfo {
  std::string id;            ///< Canonical id, e.g. "inter".
  std::string display_name;  ///< What the built policy's name() returns.
  /// Factory precondition: requires SchedulerContext::model (a trained
  /// controller). Experiment runners skip such entries when untrained.
  bool needs_controller = false;
  /// Simulate on the sized multi-capacitor bank (the pipeline's node)
  /// rather than the single-capacitor baseline hardware.
  bool sized_bank = false;
  std::function<std::unique_ptr<nvp::Scheduler>(const SchedulerContext&)>
      factory;
};

/// The process-wide scheduler table. Built once (thread-safe Meyers
/// singleton), read-only afterwards, so concurrent shard execution can
/// consult it freely. Entry order is the fixed execution order of
/// comparison rows — it matches the pre-registry hard-wired order for the
/// original seven policies, keeping existing journals byte-identical.
class Registry {
 public:
  static const Registry& global();

  /// All entries in registration order.
  const std::vector<SchedulerInfo>& entries() const noexcept {
    return entries_;
  }

  /// Entry for `id`, or null when unknown.
  const SchedulerInfo* find(const std::string& id) const noexcept;

  /// Entry for `id`; throws std::out_of_range listing the known ids.
  const SchedulerInfo& at(const std::string& id) const;

  /// Canonical ids in registration order.
  std::vector<std::string> ids() const;

  /// "inter, intra, ..." — for self-diagnosing error messages.
  std::string known_ids() const;

 private:
  Registry();
  std::vector<SchedulerInfo> entries_;
};

/// Builds the policy registered under `id` (throws like Registry::at).
std::unique_ptr<nvp::Scheduler> make_scheduler(const std::string& id,
                                               const SchedulerContext& ctx);

}  // namespace solsched::sched
