#include "sched/asap.hpp"

#include "sched/sched_util.hpp"

namespace solsched::sched {

nvp::PeriodPlan AsapScheduler::begin_period(const nvp::PeriodContext&) {
  return {};
}

std::vector<std::size_t> AsapScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const auto& graph = *ctx.graph;
  const auto& state = *ctx.state;
  std::vector<std::size_t> chosen;

  if (only_live_) {
    const auto by_nvp =
        candidates_by_nvp(graph, state, ctx.now_in_period_s, {});
    for (const auto& list : by_nvp)
      if (!list.empty()) chosen.push_back(list.front());
    return chosen;
  }

  // Pure ASAP: every ready incomplete task, earliest deadline first per NVP,
  // deadline passed or not.
  std::vector<std::vector<std::size_t>> by_nvp(graph.nvp_count());
  for (std::size_t id = 0; id < graph.size(); ++id)
    if (state.ready(id)) by_nvp[graph.task(id).nvp].push_back(id);
  for (auto& list : by_nvp) {
    if (list.empty()) continue;
    std::size_t best = list.front();
    for (std::size_t id : list)
      if (graph.task(id).deadline_s < graph.task(best).deadline_s) best = id;
    chosen.push_back(best);
  }
  return chosen;
}

}  // namespace solsched::sched
