#include "sched/energy_edf.hpp"

#include <algorithm>
#include <cmath>

#include "sched/sched_util.hpp"

namespace solsched::sched {
namespace {

/// Per-NVP EDF head candidates flattened into one cross-NVP EDF order
/// (earliest deadline first, ties: less remaining work, then id — the same
/// tie-breaks candidates_by_nvp applies within an NVP).
std::vector<std::size_t> edf_heads(const task::TaskGraph& graph,
                                   const task::PeriodState& state,
                                   double now_s,
                                   const std::vector<bool>& enabled) {
  const auto by_nvp = candidates_by_nvp(graph, state, now_s, enabled);
  std::vector<std::size_t> heads;
  for (const auto& list : by_nvp)
    if (!list.empty()) heads.push_back(list.front());
  std::sort(heads.begin(), heads.end(), [&](std::size_t a, std::size_t b) {
    const auto& ta = graph.task(a);
    const auto& tb = graph.task(b);
    if (ta.deadline_s != tb.deadline_s) return ta.deadline_s < tb.deadline_s;
    if (state.remaining_s(a) != state.remaining_s(b))
      return state.remaining_s(a) < state.remaining_s(b);
    return a < b;
  });
  return heads;
}

/// The PMU's supplyable load this slot (W).
double supplyable_w(const nvp::SlotContext& ctx) {
  return ctx.pmu->supplyable_j(ctx.solar_w, *ctx.bank, ctx.grid->dt_s) /
         ctx.grid->dt_s;
}

}  // namespace

// ---- CC-EDF ---------------------------------------------------------------

nvp::PeriodPlan CcEdfScheduler::begin_period(const nvp::PeriodContext&) {
  return {};  // All tasks, keep the capacitor: CC-EDF acts per slot.
}

std::vector<std::size_t> CcEdfScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const auto& graph = *ctx.graph;
  const auto& state = *ctx.state;
  const double dt = ctx.grid->dt_s;
  const double max_load_w = supplyable_w(ctx);

  // Cycle-conserving requirement: the average power the *remaining* live
  // work needs to meet its deadlines from now. Completed or missed tasks
  // contribute nothing, so the requirement decays through the period.
  double required_w = 0.0;
  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (state.completed(id) || state.missed(id)) continue;
    const double slack_s = graph.task(id).deadline_s - ctx.now_in_period_s;
    if (slack_s <= 0.0) continue;
    required_w += state.remaining_s(id) * graph.task(id).power_w /
                  std::max(slack_s, dt);
  }

  std::vector<std::size_t> chosen;
  double committed_w = 0.0;
  for (std::size_t head : edf_heads(graph, state, ctx.now_in_period_s, {})) {
    const double p = graph.task(head).power_w;
    if (committed_w + p > max_load_w) continue;  // Would brown the node out.
    const bool forced =
        is_forced(graph, state, head, ctx.now_in_period_s, dt);
    if (forced || committed_w + p <= required_w) {
      chosen.push_back(head);
      committed_w += p;
    }
  }
  return chosen;
}

// ---- LA-EDF ---------------------------------------------------------------

nvp::PeriodPlan LaEdfScheduler::begin_period(const nvp::PeriodContext&) {
  return {};  // All tasks; the look-ahead happens per slot.
}

std::vector<std::size_t> LaEdfScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  const auto& graph = *ctx.graph;
  const auto& state = *ctx.state;
  const double dt = ctx.grid->dt_s;
  const double max_load_w = supplyable_w(ctx);

  // Aggregate look-ahead: remaining energy demand of the live task set vs
  // what is in hand (deliverable storage) plus the forecast harvest up to
  // the latest live deadline.
  double demand_j = 0.0;
  double latest_deadline_s = ctx.now_in_period_s;
  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (state.completed(id) || state.missed(id)) continue;
    if (graph.task(id).deadline_s <= ctx.now_in_period_s) continue;
    demand_j += state.remaining_s(id) * graph.task(id).power_w;
    latest_deadline_s = std::max(latest_deadline_s, graph.task(id).deadline_s);
  }
  const std::size_t horizon_slots = static_cast<std::size_t>(
      std::ceil((latest_deadline_s - ctx.now_in_period_s) / dt));
  const double forecast_j =
      ctx.predictor
          ? config_.direct_eta * ctx.predictor->predict_energy_j(horizon_slots, dt)
          : 0.0;
  const double available_j =
      ctx.bank->selected().deliverable_j() + forecast_j;
  const bool can_defer = available_j >= demand_j * (1.0 + config_.reserve);

  std::vector<std::size_t> chosen;
  double committed_w = 0.0;
  for (std::size_t head : edf_heads(graph, state, ctx.now_in_period_s, {})) {
    const double p = graph.task(head).power_w;
    if (committed_w + p > max_load_w) continue;
    if (can_defer &&
        !is_forced(graph, state, head, ctx.now_in_period_s, dt))
      continue;  // Energy covers the plan: procrastinate, bank the harvest.
    chosen.push_back(head);
    committed_w += p;
  }
  return chosen;
}

// ---- Greedy energy feasibility --------------------------------------------

nvp::PeriodPlan GreedyFeasibleScheduler::begin_period(
    const nvp::PeriodContext& ctx) {
  const auto& graph = *ctx.graph;

  // Admission budget: forecast harvest over the whole period plus whatever
  // the selected capacitor can deliver right now.
  const double forecast_j =
      ctx.predictor ? config_.direct_eta * ctx.predictor->predict_energy_j(
                                               ctx.grid->n_slots, ctx.grid->dt_s)
                    : 0.0;
  budget_j_ = forecast_j + ctx.bank->selected().deliverable_j();

  // Enable jobs in deadline order while they (and their not-yet-enabled
  // dependency closure) fit the budget; jobs that do not fit are skipped —
  // spending energy on a task that cannot finish only starves the rest.
  std::vector<std::size_t> order(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (graph.task(a).deadline_s != graph.task(b).deadline_s)
      return graph.task(a).deadline_s < graph.task(b).deadline_s;
    return a < b;
  });

  enabled_.assign(graph.size(), false);
  double committed_j = 0.0;
  for (std::size_t id : order) {
    double extra = 0.0;
    std::vector<bool> visited(graph.size(), false);
    std::vector<std::size_t> closure{id};
    visited[id] = true;
    for (std::size_t i = 0; i < closure.size(); ++i) {
      const std::size_t t = closure[i];
      if (enabled_[t]) continue;
      extra += graph.task(t).energy_j();
      for (std::size_t p : graph.predecessors(t)) {
        if (!enabled_[p] && !visited[p]) {
          visited[p] = true;
          closure.push_back(p);
        }
      }
    }
    if (committed_j + extra <= budget_j_) {
      for (std::size_t t : closure) enabled_[t] = true;
      committed_j += extra;
    }
  }

  nvp::PeriodPlan plan;
  plan.tasks_enabled = enabled_;
  return plan;
}

std::vector<std::size_t> GreedyFeasibleScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  // EDF over the admitted subset, shed to the supplyable load.
  const double max_load_w = supplyable_w(ctx);
  std::vector<std::size_t> chosen;
  double committed_w = 0.0;
  for (std::size_t head :
       edf_heads(*ctx.graph, *ctx.state, ctx.now_in_period_s, enabled_)) {
    const double p = ctx.graph->task(head).power_w;
    if (committed_w + p > max_load_w) continue;
    chosen.push_back(head);
    committed_w += p;
  }
  return chosen;
}

}  // namespace solsched::sched
