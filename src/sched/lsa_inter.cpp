#include "sched/lsa_inter.hpp"

#include <cmath>

#include "sched/sched_util.hpp"

namespace solsched::sched {

nvp::PeriodPlan LsaInterScheduler::begin_period(const nvp::PeriodContext&) {
  return {};
}

std::vector<std::size_t> lsa_slot_decision(const nvp::SlotContext& ctx,
                                           const std::vector<bool>& enabled,
                                           double margin_slots) {
  const auto& graph = *ctx.graph;
  const auto& state = *ctx.state;
  const double dt = ctx.grid->dt_s;

  const auto by_nvp =
      candidates_by_nvp(graph, state, ctx.now_in_period_s, enabled);

  std::vector<std::size_t> chosen;
  double committed_w = 0.0;
  const double max_load_w =
      ctx.pmu->supplyable_j(ctx.solar_w, *ctx.bank, dt) / dt;

  // Pass 1: forced starts (deadline pressure within the safety margin).
  for (const auto& list : by_nvp) {
    if (list.empty()) continue;
    const std::size_t head = list.front();
    if (latest_start_s(graph, state, head) <
            ctx.now_in_period_s + (1.0 + margin_slots) * dt &&
        committed_w + graph.task(head).power_w <= max_load_w) {
      chosen.push_back(head);
      committed_w += graph.task(head).power_w;
    }
  }

  // Pass 2: opportunistic starts.
  const double direct_budget_w = ctx.solar_w * ctx.pmu->config().direct_eta;
  for (const auto& list : by_nvp) {
    if (list.empty()) continue;
    const std::size_t head = list.front();
    bool already = false;
    for (std::size_t id : chosen) already = already || id == head;
    if (already) continue;
    const auto& t = graph.task(head);

    // (b) Free solar: present surplus covers the task's power.
    const bool solar_covers = committed_w + t.power_w <= direct_budget_w;

    // (c) WCMA says laziness won't pay: predicted harvest between now and
    // the deadline is below the remaining energy need, so waiting only adds
    // leakage — spend stored energy now.
    bool forecast_starved = false;
    if (!solar_covers) {
      const auto horizon = static_cast<std::size_t>(
          std::max(0.0, (t.deadline_s - ctx.now_in_period_s) / dt));
      const double predicted_j =
          ctx.predictor->predict_energy_j(horizon, dt) *
          ctx.pmu->config().direct_eta;
      const double need_j = state.remaining_s(head) * t.power_w;
      forecast_starved = predicted_j < need_j;
    }

    if ((solar_covers || forecast_starved) &&
        committed_w + t.power_w <= max_load_w) {
      chosen.push_back(head);
      committed_w += t.power_w;
    }
  }
  return chosen;
}

std::vector<std::size_t> LsaInterScheduler::schedule_slot(
    const nvp::SlotContext& ctx) {
  return lsa_slot_decision(ctx, {}, config_.margin_slots);
}

}  // namespace solsched::sched
