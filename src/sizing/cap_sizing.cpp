#include "sizing/cap_sizing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "storage/supercap.hpp"
#include "task/period_state.hpp"
#include "util/kmeans.hpp"
#include "util/mathx.hpp"
#include "util/thread_pool.hpp"

namespace solsched::sizing {

std::vector<double> asap_period_load_w(const task::TaskGraph& graph,
                                       std::size_t n_slots, double dt_s) {
  task::PeriodState state(graph);
  std::vector<double> load(n_slots, 0.0);
  for (std::size_t m = 0; m < n_slots; ++m) {
    // Pure ASAP with unlimited energy: every NVP runs its earliest-deadline
    // ready task.
    std::vector<std::size_t> chosen;
    std::vector<bool> nvp_used(graph.nvp_count(), false);
    for (std::size_t id : graph.topo_order()) {
      if (!state.ready(id)) continue;
      const std::size_t nvp = graph.task(id).nvp;
      if (nvp_used[nvp]) continue;
      // EDF among the NVP's ready tasks.
      bool better_exists = false;
      for (std::size_t other : graph.tasks_on_nvp(nvp))
        if (other != id && state.ready(other) &&
            graph.task(other).deadline_s < graph.task(id).deadline_s)
          better_exists = true;
      if (better_exists) continue;
      nvp_used[nvp] = true;
      chosen.push_back(id);
    }
    for (std::size_t id : chosen) {
      load[m] += graph.task(id).power_w;
      state.execute(id, dt_s);
    }
  }
  return load;
}

std::vector<double> day_migration_deltas_j(const task::TaskGraph& graph,
                                           const solar::SolarTrace& trace,
                                           std::size_t day,
                                           const storage::PmuConfig& pmu) {
  const solar::TimeGrid& grid = trace.grid();
  return day_migration_deltas_j(
      asap_period_load_w(graph, grid.n_slots, grid.dt_s), trace, day, pmu);
}

std::vector<double> day_migration_deltas_j(const std::vector<double>& load,
                                           const solar::SolarTrace& trace,
                                           std::size_t day,
                                           const storage::PmuConfig& pmu) {
  const solar::TimeGrid& grid = trace.grid();
  std::vector<double> deltas;
  deltas.reserve(grid.n_periods * grid.n_slots);
  for (std::size_t j = 0; j < grid.n_periods; ++j)
    for (std::size_t m = 0; m < grid.n_slots; ++m) {
      // Surplus beyond what the direct channel needs for the load (Eq. 2,
      // adjusted for the dual-channel architecture).
      const double solar_w = trace.at(day, j, m);
      const double needed_w = load[m] / pmu.direct_eta;
      deltas.push_back((solar_w - needed_w) * grid.dt_s);
    }
  return deltas;
}

double migration_loss_j(const std::vector<double>& deltas_j, double capacity_f,
                        const SizingConfig& config, double dt_s) {
  storage::SuperCapacitor cap(
      storage::CapParams{capacity_f, config.v_low, config.v_high},
      config.regulators, config.leakage);
  double loss = 0.0;
  for (double delta : deltas_j) {
    if (delta > 0.0) {
      const storage::ChargeResult c = cap.charge(delta);
      loss += c.conversion_loss_j + c.spilled_j;
    } else if (delta < 0.0) {
      const double demand = -delta;
      const storage::DischargeResult d = cap.discharge(demand);
      // Unserved demand is counted in full: the η = 0 out-of-range case of
      // Eq. 3 makes ΔE·(1-η) the whole |ΔE|.
      loss += d.conversion_loss_j + (demand - d.delivered_j);
    }
    loss += cap.apply_leakage(dt_s);
  }
  return loss;
}

double optimal_capacity_f(const std::vector<double>& deltas_j,
                          const SizingConfig& config, double dt_s) {
  // Coarse log-space scan to bracket the minimum (the loss curve is close
  // to unimodal but can have shallow plateaus).
  const auto grid_points = util::linspace(
      std::log10(config.c_min_f), std::log10(config.c_max_f),
      config.coarse_points);
  // Independent candidate capacities: evaluate in parallel into per-index
  // slots, pick the minimum serially in grid order (deterministic at any
  // thread count).
  std::vector<double> losses(grid_points.size());
  util::parallel_for(grid_points.size(), [&](std::size_t i) {
    losses[i] =
        migration_loss_j(deltas_j, std::pow(10.0, grid_points[i]), config,
                         dt_s);
  });
  std::size_t best = 0;
  double best_loss = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < grid_points.size(); ++i) {
    if (losses[i] < best_loss) {
      best_loss = losses[i];
      best = i;
    }
  }
  const double lo = grid_points[best == 0 ? 0 : best - 1];
  const double hi =
      grid_points[std::min(grid_points.size() - 1, best + 1)];
  const double log_c = util::golden_minimize(
      [&](double lg) {
        return migration_loss_j(deltas_j, std::pow(10.0, lg), config, dt_s);
      },
      lo, hi, 1e-3);
  return std::pow(10.0, log_c);
}

SizingResult size_capacitors(const task::TaskGraph& graph,
                             const solar::SolarTrace& trace, std::size_t h,
                             const SizingConfig& config) {
  const solar::TimeGrid& grid = trace.grid();
  SizingResult result;
  // The ASAP load is period-invariant: derive it once for all days.
  const std::vector<double> load =
      asap_period_load_w(graph, grid.n_slots, grid.dt_s);
  // Days are independent; each writes its own pre-sized slot.
  result.daily_optimal_f.assign(grid.n_days, 0.0);
  result.daily_loss_j.assign(grid.n_days, 0.0);
  util::parallel_for(grid.n_days, [&](std::size_t day) {
    const auto deltas = day_migration_deltas_j(load, trace, day, config.pmu);
    const double c_opt = optimal_capacity_f(deltas, config, grid.dt_s);
    result.daily_optimal_f[day] = c_opt;
    result.daily_loss_j[day] =
        migration_loss_j(deltas, c_opt, config, grid.dt_s);
  });
  const util::KMeansResult clusters =
      util::kmeans_1d(result.daily_optimal_f, h);
  result.capacities_f = clusters.centroids;
  result.day_labels = clusters.labels;
  return result;
}

}  // namespace solsched::sizing
