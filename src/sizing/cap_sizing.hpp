// Distributed super-capacitor sizing (Sec. 4.1).
//
// Three steps, exactly as the paper:
//   1. derive each day's energy-migration pattern ΔE_{i,j,m} (Eq. 2) from an
//      unlimited-energy ASAP schedule of the benchmark;
//   2. find the capacity C_i^opt minimizing that day's migration loss
//      (Eq. 10-11): conversion losses + leakage + spilled surplus + unmet
//      demand (the η = 0 out-of-range case of Eq. 3 counts in full);
//   3. cluster the {C_i^opt} into H groups (k-means) and use each cluster
//      mean as one distributed capacitor.
#pragma once

#include <cstddef>
#include <vector>

#include "solar/solar_trace.hpp"
#include "storage/leakage.hpp"
#include "storage/pmu.hpp"
#include "storage/regulator.hpp"
#include "task/task_graph.hpp"

namespace solsched::sizing {

/// Search and physics knobs.
struct SizingConfig {
  double c_min_f = 0.5;
  double c_max_f = 120.0;
  std::size_t coarse_points = 13;  ///< Log-spaced pre-scan resolution.
  double v_low = 0.5;
  double v_high = 5.0;
  storage::PmuConfig pmu{};
  storage::RegulatorModel regulators =
      storage::RegulatorModel::fitted_default();
  storage::LeakageModel leakage = storage::LeakageModel::fitted_default();
};

/// Outcome of the whole sizing flow.
struct SizingResult {
  std::vector<double> daily_optimal_f;   ///< C_i^opt per day.
  std::vector<double> daily_loss_j;      ///< Migration loss at the optimum.
  std::vector<double> capacities_f;      ///< H clustered capacities, ascending.
  std::vector<std::size_t> day_labels;   ///< Cluster index per day.
};

/// Per-slot load power (W) of the benchmark under an unlimited-energy ASAP
/// schedule of one period (identical across periods).
std::vector<double> asap_period_load_w(const task::TaskGraph& graph,
                                       std::size_t n_slots, double dt_s);

/// Migration deltas ΔE (J, signed) per slot for a whole day (Eq. 2).
std::vector<double> day_migration_deltas_j(const task::TaskGraph& graph,
                                           const solar::SolarTrace& trace,
                                           std::size_t day,
                                           const storage::PmuConfig& pmu);

/// Same, with the (day-invariant) ASAP load precomputed by the caller, so a
/// multi-day sweep does not re-derive it per day.
std::vector<double> day_migration_deltas_j(const std::vector<double>& load_w,
                                           const solar::SolarTrace& trace,
                                           std::size_t day,
                                           const storage::PmuConfig& pmu);

/// Total migration loss (J) of pushing a ΔE sequence through a capacitor of
/// the given capacity (Eq. 10).
double migration_loss_j(const std::vector<double>& deltas_j, double capacity_f,
                        const SizingConfig& config, double dt_s);

/// C_i^opt for one day's deltas: log-space coarse scan + golden refinement.
double optimal_capacity_f(const std::vector<double>& deltas_j,
                          const SizingConfig& config, double dt_s);

/// Full flow over a multi-day trace.
SizingResult size_capacitors(const task::TaskGraph& graph,
                             const solar::SolarTrace& trace, std::size_t h,
                             const SizingConfig& config = {});

}  // namespace solsched::sizing
