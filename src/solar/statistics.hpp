// Statistical analysis of solar traces.
//
// The paper explains the Fig. 10(a) prediction-length plateau by "the
// locality of correlation in solar power": beyond some lag, solar samples
// tell you nothing about each other. These helpers quantify that on any
// trace — autocorrelation at a lag, the decorrelation horizon, and
// day-to-day energy correlation (what the Markov weather model controls).
#pragma once

#include <cstddef>
#include <vector>

#include "solar/solar_trace.hpp"

namespace solsched::solar {

/// Autocorrelation of the per-slot power series at the given lag (slots).
/// Returns 0 for degenerate inputs (constant series, lag >= length).
double autocorrelation(const SolarTrace& trace, std::size_t lag_slots);

/// Autocorrelation restricted to the diurnal *anomaly*: the per-slot mean
/// day profile is removed first, so the 24 h cycle itself does not count
/// as "correlation". This is the weather signal the predictors live off.
double anomaly_autocorrelation(const SolarTrace& trace,
                               std::size_t lag_slots);

/// Smallest lag (slots) at which the anomaly autocorrelation falls below
/// `threshold`, scanned up to `max_lag_slots`; returns max_lag_slots if it
/// never does. This is the trace's decorrelation horizon.
std::size_t decorrelation_horizon(const SolarTrace& trace,
                                  std::size_t max_lag_slots,
                                  double threshold = 0.2,
                                  std::size_t stride = 1);

/// Correlation between consecutive days' total energies (the day-to-day
/// persistence the Markov weather chain induces). Returns 0 with < 3 days.
double day_energy_correlation(const SolarTrace& trace);

}  // namespace solsched::solar
