#include "solar/solar_trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace solsched::solar {

SolarTrace::SolarTrace(const TimeGrid& grid)
    : grid_(grid), power_w_(grid.total_slots(), 0.0) {}

SolarTrace::SolarTrace(const TimeGrid& grid, std::vector<double> power_w)
    : grid_(grid), power_w_(std::move(power_w)) {
  if (power_w_.size() != grid_.total_slots())
    throw std::invalid_argument("SolarTrace: power vector size mismatch");
}

double SolarTrace::at(std::size_t day, std::size_t period,
                      std::size_t slot) const {
  return power_w_.at(grid_.flat_slot(day, period, slot));
}

std::vector<double> SolarTrace::period_powers(std::size_t day,
                                              std::size_t period) const {
  std::vector<double> out(grid_.n_slots);
  for (std::size_t m = 0; m < grid_.n_slots; ++m) out[m] = at(day, period, m);
  return out;
}

double SolarTrace::period_energy_j(std::size_t day, std::size_t period) const {
  double energy = 0.0;
  for (std::size_t m = 0; m < grid_.n_slots; ++m)
    energy += at(day, period, m) * grid_.dt_s;
  return energy;
}

double SolarTrace::day_energy_j(std::size_t day) const {
  double energy = 0.0;
  for (std::size_t j = 0; j < grid_.n_periods; ++j)
    energy += period_energy_j(day, j);
  return energy;
}

double SolarTrace::total_energy_j() const {
  double energy = 0.0;
  for (double p : power_w_) energy += p * grid_.dt_s;
  return energy;
}

double SolarTrace::peak_power_w() const {
  if (power_w_.empty()) return 0.0;
  return *std::max_element(power_w_.begin(), power_w_.end());
}

SolarTrace SolarTrace::scaled(double factor) const {
  std::vector<double> scaled_power = power_w_;
  for (double& p : scaled_power) p *= factor;
  return SolarTrace{grid_, std::move(scaled_power)};
}

SolarTrace SolarTrace::day_slice(std::size_t day) const {
  if (day >= grid_.n_days)
    throw std::out_of_range("SolarTrace::day_slice: day out of range");
  TimeGrid one = grid_;
  one.n_days = 1;
  const std::size_t begin = day * grid_.slots_per_day();
  std::vector<double> slice(power_w_.begin() + static_cast<long>(begin),
                            power_w_.begin() +
                                static_cast<long>(begin + one.total_slots()));
  return SolarTrace{one, std::move(slice)};
}

SolarTrace SolarTrace::concat_days(const std::vector<SolarTrace>& days) {
  if (days.empty()) return {};
  TimeGrid grid = days.front().grid();
  grid.n_days = 0;
  std::vector<double> power;
  for (const auto& d : days) {
    TimeGrid g = d.grid();
    if (g.n_periods != grid.n_periods || g.n_slots != grid.n_slots ||
        g.dt_s != grid.dt_s)
      throw std::invalid_argument("concat_days: incompatible day grids");
    grid.n_days += g.n_days;
    power.insert(power.end(), d.raw().begin(), d.raw().end());
  }
  return SolarTrace{grid, std::move(power)};
}

}  // namespace solsched::solar
