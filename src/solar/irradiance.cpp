#include "solar/irradiance.hpp"

#include <cmath>
#include <numbers>

#include "util/mathx.hpp"

namespace solsched::solar {

std::string to_string(DayKind kind) {
  switch (kind) {
    case DayKind::kClear: return "Clear";
    case DayKind::kPartlyCloudy: return "PartlyCloudy";
    case DayKind::kOvercast: return "Overcast";
    case DayKind::kRainy: return "Rainy";
  }
  return "Unknown";
}

double ClearSkyModel::irradiance(double time_of_day_s) const noexcept {
  if (time_of_day_s <= sunrise_s || time_of_day_s >= sunset_s) return 0.0;
  const double phase =
      (time_of_day_s - sunrise_s) / (sunset_s - sunrise_s);  // (0,1)
  const double bell = std::sin(std::numbers::pi * phase);
  return peak_w_m2 * std::pow(bell, shape_exp);
}

namespace {

/// Archetype parameters: mean attenuation level, walk volatility,
/// cloud-dip arrival rate (per hour) and dip depth range.
struct CloudParams {
  double mean_level;
  double volatility;
  double dips_per_hour;
  double dip_depth_lo;
  double dip_depth_hi;
  double dip_len_lo_s;
  double dip_len_hi_s;
};

CloudParams params_for(DayKind kind) {
  switch (kind) {
    case DayKind::kClear:
      return {0.97, 0.01, 0.2, 0.80, 0.95, 60.0, 240.0};
    case DayKind::kPartlyCloudy:
      return {0.80, 0.05, 4.0, 0.25, 0.70, 120.0, 900.0};
    case DayKind::kOvercast:
      return {0.35, 0.03, 1.0, 0.60, 0.90, 300.0, 1200.0};
    case DayKind::kRainy:
      return {0.15, 0.02, 2.0, 0.40, 0.80, 300.0, 1800.0};
  }
  return {1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0};
}

}  // namespace

CloudProcess::CloudProcess(DayKind kind, util::Rng rng)
    : kind_(kind), rng_(rng) {
  level_ = params_for(kind).mean_level;
}

double CloudProcess::step(double dt_s) {
  const CloudParams p = params_for(kind_);

  // Mean-reverting bounded walk around the archetype level.
  const double reversion = 0.05 * (p.mean_level - level_);
  level_ += reversion + p.volatility * std::sqrt(dt_s / 60.0) * rng_.normal();
  level_ = util::clamp(level_, 0.02, 1.0);

  // Discrete cloud dips (passing clouds): Poisson arrivals.
  if (dip_remaining_s_ > 0.0) {
    dip_remaining_s_ -= dt_s;
  } else {
    const double arrivals = p.dips_per_hour * dt_s / 3600.0;
    if (rng_.bernoulli(1.0 - std::exp(-arrivals))) {
      dip_remaining_s_ = rng_.uniform(p.dip_len_lo_s, p.dip_len_hi_s);
      dip_depth_ = rng_.uniform(p.dip_depth_lo, p.dip_depth_hi);
    }
  }
  const double dip = dip_remaining_s_ > 0.0 ? dip_depth_ : 1.0;
  return util::clamp(level_ * dip, 0.0, 1.0);
}

}  // namespace solsched::solar
