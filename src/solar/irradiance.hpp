// Synthetic irradiance model — stand-in for the NREL MIDC database [15].
//
// The schedulers consume only a per-slot harvested-power series; what matters
// for reproducing the paper is the diurnal bell shape, day archetypes with
// very different totals (the paper's four representative days, Fig. 7),
// intra-day cloud variability and day-to-day correlation. A clear-sky
// sinusoidal-power model modulated by per-archetype cloud processes gives
// exactly those statistics, deterministically.
#pragma once

#include <string>

#include "util/rng.hpp"

namespace solsched::solar {

/// Weather archetype of one day. Values follow the paper's Fig. 7 spread:
/// a bright clear day down to a dark rainy day.
enum class DayKind {
  kClear,         ///< Cloudless; near the clear-sky envelope.
  kPartlyCloudy,  ///< Passing clouds; deep short dips.
  kOvercast,      ///< Uniform thick cloud; strongly attenuated, smooth.
  kRainy,         ///< Heavy overcast + rain; very low yield.
};

/// Human-readable archetype name ("Clear", "PartlyCloudy", ...).
std::string to_string(DayKind kind);

/// Parameters of the clear-sky envelope.
struct ClearSkyModel {
  double sunrise_s = 6.0 * 3600.0;   ///< Seconds after midnight.
  double sunset_s = 18.0 * 3600.0;   ///< Seconds after midnight.
  double peak_w_m2 = 1000.0;         ///< Zenith irradiance.
  double shape_exp = 1.2;            ///< Sharpens the midday bell.

  /// Clear-sky irradiance (W/m^2) at time-of-day t (seconds). Zero at night.
  double irradiance(double time_of_day_s) const noexcept;
};

/// Per-archetype cloud attenuation process. Produces a multiplicative factor
/// in (0, 1] that evolves as a bounded random walk with archetype-specific
/// mean level and dip behaviour.
class CloudProcess {
 public:
  CloudProcess(DayKind kind, util::Rng rng);

  /// Advances the process by dt seconds and returns the attenuation factor.
  double step(double dt_s);

  DayKind kind() const noexcept { return kind_; }

 private:
  DayKind kind_;
  util::Rng rng_;
  double level_ = 1.0;       ///< Current attenuation (bounded walk state).
  double dip_remaining_s_ = 0.0;  ///< Remaining duration of an active cloud dip.
  double dip_depth_ = 0.0;        ///< Attenuation multiplier during the dip.
};

}  // namespace solsched::solar
