#include "solar/statistics.hpp"

#include "util/stats.hpp"

namespace solsched::solar {
namespace {

double series_autocorrelation(const std::vector<double>& xs,
                              std::size_t lag) {
  if (lag >= xs.size()) return 0.0;
  std::vector<double> head(xs.begin(), xs.end() - static_cast<long>(lag));
  std::vector<double> tail(xs.begin() + static_cast<long>(lag), xs.end());
  return util::correlation(head, tail);
}

}  // namespace

double autocorrelation(const SolarTrace& trace, std::size_t lag_slots) {
  return series_autocorrelation(trace.raw(), lag_slots);
}

double anomaly_autocorrelation(const SolarTrace& trace,
                               std::size_t lag_slots) {
  const solar::TimeGrid& grid = trace.grid();
  const std::size_t day_slots = grid.slots_per_day();
  if (day_slots == 0 || grid.n_days == 0) return 0.0;

  // Mean day profile.
  std::vector<double> profile(day_slots, 0.0);
  for (std::size_t f = 0; f < trace.raw().size(); ++f)
    profile[f % day_slots] += trace.raw()[f];
  for (double& p : profile) p /= static_cast<double>(grid.n_days);

  std::vector<double> anomaly(trace.raw().size());
  for (std::size_t f = 0; f < anomaly.size(); ++f)
    anomaly[f] = trace.raw()[f] - profile[f % day_slots];
  return series_autocorrelation(anomaly, lag_slots);
}

std::size_t decorrelation_horizon(const SolarTrace& trace,
                                  std::size_t max_lag_slots, double threshold,
                                  std::size_t stride) {
  if (stride == 0) stride = 1;
  for (std::size_t lag = stride; lag <= max_lag_slots; lag += stride)
    if (anomaly_autocorrelation(trace, lag) < threshold) return lag;
  return max_lag_slots;
}

double day_energy_correlation(const SolarTrace& trace) {
  const std::size_t n_days = trace.grid().n_days;
  if (n_days < 3) return 0.0;
  std::vector<double> today, tomorrow;
  for (std::size_t d = 0; d + 1 < n_days; ++d) {
    today.push_back(trace.day_energy_j(d));
    tomorrow.push_back(trace.day_energy_j(d + 1));
  }
  return util::correlation(today, tomorrow);
}

}  // namespace solsched::solar
