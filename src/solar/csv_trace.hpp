// Loading measured solar traces from CSV (NREL MIDC-style exports).
//
// The synthetic generator stands in for the MIDC database, but a downstream
// user with real data can feed it here: one sample per line, either panel
// output power (W) or plane-of-array irradiance (W/m^2) that is converted
// through a SolarPanel. Samples are resampled onto the simulation grid by
// averaging (downsample) or sample-and-hold (upsample).
#pragma once

#include <string>

#include "solar/panel.hpp"
#include "solar/solar_trace.hpp"

namespace solsched::solar {

/// Parses one numeric column from CSV text. `column` selects the field
/// (0-based); lines that do not parse (headers, blanks) are skipped.
/// Throws std::invalid_argument if no numeric rows are found.
std::vector<double> parse_csv_column(const std::string& csv_text,
                                     std::size_t column);

/// Resamples `samples` (uniformly spaced over the grid's total duration)
/// onto the grid's slots: block averages when there are more samples than
/// slots, sample-and-hold otherwise.
std::vector<double> resample_to_grid(const std::vector<double>& samples,
                                     const TimeGrid& grid);

/// Builds a trace from harvested-power samples (W).
SolarTrace trace_from_power_csv(const std::string& csv_text,
                                const TimeGrid& grid, std::size_t column = 0);

/// Builds a trace from irradiance samples (W/m^2) through a panel model.
SolarTrace trace_from_irradiance_csv(const std::string& csv_text,
                                     const TimeGrid& grid,
                                     const SolarPanel& panel,
                                     std::size_t column = 0);

}  // namespace solsched::solar
