// Solar power predictors.
//
// The inter-task baseline [3] is driven by WCMA (Weather-Conditioned Moving
// Average, Piorno et al.); we also provide the classic per-slot EWMA and an
// oracle (perfect knowledge) predictor used by the offline optimal scheduler.
// Predictors consume the trace stream one slot at a time and answer queries
// for any forward horizon, so a single interface serves per-slot lazy
// scheduling and multi-day long-term analysis alike.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "solar/solar_trace.hpp"

namespace solsched::solar {

/// Streaming predictor interface. Call observe() once per elapsed slot in
/// order; predict(h) then estimates the power of the slot h steps after the
/// last observed one (h >= 1).
class SolarPredictor {
 public:
  virtual ~SolarPredictor() = default;

  /// Feeds the measured power of the next slot (watts).
  virtual void observe(double power_w) = 0;

  /// Predicted power (watts) of the slot `horizon` slots ahead of the last
  /// observed slot. horizon >= 1.
  virtual double predict(std::size_t horizon) const = 0;

  /// Resets all history.
  virtual void reset() = 0;

  /// Identifier for reports.
  virtual std::string name() const = 0;

  /// Predicted energy (joules) over the next `n` slots of length dt_s.
  double predict_energy_j(std::size_t n, double dt_s) const;
};

/// Per-slot-of-day exponentially weighted moving average (Kansal-style):
/// one EWMA cell per slot position within the day, updated across days.
class EwmaPredictor final : public SolarPredictor {
 public:
  /// `slots_per_day` fixes the diurnal indexing; lambda in (0, 1] weights
  /// today's observation against the historical average.
  EwmaPredictor(std::size_t slots_per_day, double lambda = 0.5);

  void observe(double power_w) override;
  double predict(std::size_t horizon) const override;
  void reset() override;
  std::string name() const override { return "EWMA"; }

 private:
  std::size_t slots_per_day_;
  double lambda_;
  std::size_t cursor_ = 0;  ///< Next slot-of-day to be observed.
  std::vector<double> avg_;
  std::vector<bool> seen_;
};

/// Weather-Conditioned Moving Average [3]: the mean of the same slot over
/// the previous D days, scaled by a GAP factor measuring how today compares
/// with those days over the last K slots, blended with the latest sample.
class WcmaPredictor final : public SolarPredictor {
 public:
  WcmaPredictor(std::size_t slots_per_day, std::size_t history_days = 4,
                std::size_t gap_window = 3, double alpha = 0.7);

  void observe(double power_w) override;
  double predict(std::size_t horizon) const override;
  void reset() override;
  std::string name() const override { return "WCMA"; }

 private:
  /// Mean of the previous D days at slot-of-day `slot`.
  double day_mean(std::size_t slot) const;
  /// GAP factor of the current day (~1 on a typical day, <1 on a dark one).
  double gap_factor() const;

  std::size_t slots_per_day_;
  std::size_t history_days_;
  std::size_t gap_window_;
  double alpha_;
  std::size_t cursor_ = 0;  ///< Next slot-of-day to be observed.
  std::vector<std::vector<double>> days_;  ///< Completed day rows.
  std::vector<double> today_;
  double last_sample_ = 0.0;
};

/// Pro-Energy-style profile predictor (Cammarano et al.): keeps a pool of
/// recent daily profiles; predictions blend the latest observation with the
/// *most similar* stored profile, where similarity is the mean absolute
/// distance over the last K observed slots. Where WCMA scales the mean
/// profile, Pro-Energy selects among distinct profiles — better when days
/// fall into modes (clear vs. storm) rather than a continuum.
class ProEnergyPredictor final : public SolarPredictor {
 public:
  ProEnergyPredictor(std::size_t slots_per_day, std::size_t pool_days = 5,
                     std::size_t similarity_window = 4, double alpha = 0.6);

  void observe(double power_w) override;
  double predict(std::size_t horizon) const override;
  void reset() override;
  std::string name() const override { return "Pro-Energy"; }

  /// Index into the pool of the currently most similar profile (for tests);
  /// SIZE_MAX when the pool is empty or no slot has been observed today.
  std::size_t most_similar_profile() const;

 private:
  std::size_t slots_per_day_;
  std::size_t pool_days_;
  std::size_t similarity_window_;
  double alpha_;
  std::size_t cursor_ = 0;
  std::vector<std::vector<double>> pool_;  ///< Completed day profiles.
  std::vector<double> today_;
  double last_sample_ = 0.0;
};

/// Perfect prediction: reads future values straight from the trace. Used by
/// the offline optimal scheduler and as an upper bound in sweeps.
class OraclePredictor final : public SolarPredictor {
 public:
  explicit OraclePredictor(const SolarTrace& trace);

  void observe(double power_w) override;
  double predict(std::size_t horizon) const override;
  void reset() override;
  std::string name() const override { return "Oracle"; }

 private:
  const SolarTrace* trace_;
  std::size_t cursor_ = 0;  ///< Flat index of next unobserved slot.
};

/// Mean absolute prediction error of `predictor` over `trace` at the given
/// horizon (watts). The predictor is reset first.
double evaluate_predictor_mae(SolarPredictor& predictor,
                              const SolarTrace& trace, std::size_t horizon);

}  // namespace solsched::solar
