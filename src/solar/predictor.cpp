#include "solar/predictor.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/mathx.hpp"

namespace solsched::solar {

double SolarPredictor::predict_energy_j(std::size_t n, double dt_s) const {
  double energy = 0.0;
  for (std::size_t h = 1; h <= n; ++h) energy += predict(h) * dt_s;
  return energy;
}

// ---------------------------------------------------------------- EWMA ----

EwmaPredictor::EwmaPredictor(std::size_t slots_per_day, double lambda)
    : slots_per_day_(slots_per_day),
      lambda_(lambda),
      avg_(slots_per_day, 0.0),
      seen_(slots_per_day, false) {
  if (slots_per_day == 0)
    throw std::invalid_argument("EwmaPredictor: slots_per_day must be > 0");
  if (lambda <= 0.0 || lambda > 1.0)
    throw std::invalid_argument("EwmaPredictor: lambda must be in (0, 1]");
}

void EwmaPredictor::observe(double power_w) {
  const std::size_t slot = cursor_ % slots_per_day_;
  if (seen_[slot])
    avg_[slot] = lambda_ * power_w + (1.0 - lambda_) * avg_[slot];
  else {
    avg_[slot] = power_w;
    seen_[slot] = true;
  }
  ++cursor_;
}

double EwmaPredictor::predict(std::size_t horizon) const {
  const std::size_t slot = (cursor_ + horizon - 1) % slots_per_day_;
  return seen_[slot] ? avg_[slot] : 0.0;
}

void EwmaPredictor::reset() {
  cursor_ = 0;
  avg_.assign(slots_per_day_, 0.0);
  seen_.assign(slots_per_day_, false);
}

// ---------------------------------------------------------------- WCMA ----

WcmaPredictor::WcmaPredictor(std::size_t slots_per_day,
                             std::size_t history_days, std::size_t gap_window,
                             double alpha)
    : slots_per_day_(slots_per_day),
      history_days_(history_days),
      gap_window_(gap_window),
      alpha_(alpha) {
  if (slots_per_day == 0)
    throw std::invalid_argument("WcmaPredictor: slots_per_day must be > 0");
  if (history_days == 0)
    throw std::invalid_argument("WcmaPredictor: history_days must be > 0");
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("WcmaPredictor: alpha must be in [0, 1]");
  today_.reserve(slots_per_day);
}

double WcmaPredictor::day_mean(std::size_t slot) const {
  if (days_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& day : days_) acc += day[slot];
  return acc / static_cast<double>(days_.size());
}

double WcmaPredictor::gap_factor() const {
  if (days_.empty() || today_.empty()) return 1.0;
  // Weighted ratio of today's last K samples to the historical mean at the
  // same slots; weights favour the most recent sample (Piorno et al.).
  const std::size_t k = std::min(gap_window_, today_.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t slot = today_.size() - 1 - i;
    const double mean = day_mean(slot);
    if (mean <= 1e-12) continue;  // Night slots carry no weather signal.
    const double weight = static_cast<double>(k - i);
    num += weight * (today_[slot] / mean);
    den += weight;
  }
  if (den <= 0.0) return 1.0;
  return util::clamp(num / den, 0.0, 2.0);
}

void WcmaPredictor::observe(double power_w) {
  today_.push_back(power_w);
  last_sample_ = power_w;
  ++cursor_;
  if (today_.size() == slots_per_day_) {
    days_.push_back(std::move(today_));
    today_ = {};
    today_.reserve(slots_per_day_);
    if (days_.size() > history_days_) days_.erase(days_.begin());
  }
}

double WcmaPredictor::predict(std::size_t horizon) const {
  const std::size_t slot = (cursor_ + horizon - 1) % slots_per_day_;
  const double mean = day_mean(slot);
  const double conditioned = gap_factor() * mean;
  if (days_.empty()) return last_sample_;  // Cold start: persistence.
  // Blend the last sample with the weather-conditioned mean; the sample's
  // influence decays with horizon (alpha^h), matching WCMA's single-step
  // blend when h == 1.
  const double decay = std::pow(alpha_, static_cast<double>(horizon));
  return decay * last_sample_ + (1.0 - decay) * conditioned;
}

void WcmaPredictor::reset() {
  cursor_ = 0;
  days_.clear();
  today_.clear();
  last_sample_ = 0.0;
}

// ---------------------------------------------------------- Pro-Energy ----

ProEnergyPredictor::ProEnergyPredictor(std::size_t slots_per_day,
                                       std::size_t pool_days,
                                       std::size_t similarity_window,
                                       double alpha)
    : slots_per_day_(slots_per_day),
      pool_days_(pool_days),
      similarity_window_(similarity_window),
      alpha_(alpha) {
  if (slots_per_day == 0)
    throw std::invalid_argument("ProEnergyPredictor: slots_per_day > 0");
  if (pool_days == 0)
    throw std::invalid_argument("ProEnergyPredictor: pool_days > 0");
  if (alpha < 0.0 || alpha > 1.0)
    throw std::invalid_argument("ProEnergyPredictor: alpha in [0, 1]");
  today_.reserve(slots_per_day);
}

std::size_t ProEnergyPredictor::most_similar_profile() const {
  if (pool_.empty() || today_.empty()) return static_cast<std::size_t>(-1);
  const std::size_t k = std::min(similarity_window_, today_.size());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t p = 0; p < pool_.size(); ++p) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t slot = today_.size() - 1 - i;
      acc += std::fabs(today_[slot] - pool_[p][slot]);
    }
    if (acc < best_d) {
      best_d = acc;
      best = p;
    }
  }
  return best;
}

void ProEnergyPredictor::observe(double power_w) {
  today_.push_back(power_w);
  last_sample_ = power_w;
  ++cursor_;
  if (today_.size() == slots_per_day_) {
    pool_.push_back(std::move(today_));
    today_ = {};
    today_.reserve(slots_per_day_);
    if (pool_.size() > pool_days_) pool_.erase(pool_.begin());
  }
}

double ProEnergyPredictor::predict(std::size_t horizon) const {
  const std::size_t slot = (cursor_ + horizon - 1) % slots_per_day_;
  if (pool_.empty()) return last_sample_;  // Cold start: persistence.
  const std::size_t similar = most_similar_profile();
  const std::vector<double>& profile =
      similar == static_cast<std::size_t>(-1) ? pool_.back() : pool_[similar];
  const double decay = std::pow(alpha_, static_cast<double>(horizon));
  return decay * last_sample_ + (1.0 - decay) * profile[slot];
}

void ProEnergyPredictor::reset() {
  cursor_ = 0;
  pool_.clear();
  today_.clear();
  last_sample_ = 0.0;
}

// -------------------------------------------------------------- Oracle ----

OraclePredictor::OraclePredictor(const SolarTrace& trace) : trace_(&trace) {}

void OraclePredictor::observe(double /*power_w*/) { ++cursor_; }

double OraclePredictor::predict(std::size_t horizon) const {
  const std::size_t idx = cursor_ + horizon - 1;
  if (idx >= trace_->grid().total_slots()) return 0.0;
  return trace_->at_flat(idx);
}

void OraclePredictor::reset() { cursor_ = 0; }

// ---------------------------------------------------------- evaluation ----

double evaluate_predictor_mae(SolarPredictor& predictor,
                              const SolarTrace& trace, std::size_t horizon) {
  predictor.reset();
  const std::size_t total = trace.grid().total_slots();
  if (total <= horizon) return 0.0;
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t flat = 0; flat + horizon < total; ++flat) {
    predictor.observe(trace.at_flat(flat));
    const double predicted = predictor.predict(horizon);
    const double actual = trace.at_flat(flat + horizon);
    acc += std::fabs(predicted - actual);
    ++count;
  }
  return count ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace solsched::solar
