// Hierarchical simulation time base (Table 1, "Time" rows).
//
// Scheduling time is organized as N_d days x N_p periods x N_s slots, each
// slot lasting dt seconds. Tasks are periodic with period N_s * dt and may be
// preempted at slot boundaries only.
#pragma once

#include <cstddef>

namespace solsched::solar {

/// Immutable description of the day/period/slot hierarchy.
struct TimeGrid {
  std::size_t n_days = 1;      ///< N_d: days covered by a trace/schedule.
  std::size_t n_periods = 144; ///< N_p: periods per day.
  std::size_t n_slots = 20;    ///< N_s: slots per period.
  double dt_s = 30.0;          ///< Slot length in seconds.

  /// Period length ΔT in seconds.
  constexpr double period_s() const noexcept {
    return static_cast<double>(n_slots) * dt_s;
  }
  /// Nominal day length implied by the grid, in seconds.
  constexpr double day_s() const noexcept {
    return static_cast<double>(n_periods) * period_s();
  }
  /// Slots per day.
  constexpr std::size_t slots_per_day() const noexcept {
    return n_periods * n_slots;
  }
  /// Total slots across all days.
  constexpr std::size_t total_slots() const noexcept {
    return n_days * slots_per_day();
  }
  /// Total periods across all days.
  constexpr std::size_t total_periods() const noexcept {
    return n_days * n_periods;
  }
  /// Flattened slot index of (day, period, slot).
  constexpr std::size_t flat_slot(std::size_t day, std::size_t period,
                                  std::size_t slot) const noexcept {
    return (day * n_periods + period) * n_slots + slot;
  }
  /// Flattened period index of (day, period).
  constexpr std::size_t flat_period(std::size_t day,
                                    std::size_t period) const noexcept {
    return day * n_periods + period;
  }
  /// Absolute time (seconds since trace start) at the beginning of a slot.
  constexpr double slot_start_s(std::size_t day, std::size_t period,
                                std::size_t slot) const noexcept {
    return static_cast<double>(flat_slot(day, period, slot)) * dt_s;
  }
  /// Time-of-day in seconds at the beginning of a flattened slot index.
  constexpr double time_of_day_s(std::size_t flat) const noexcept {
    return static_cast<double>(flat % slots_per_day()) * dt_s;
  }

  /// Grids are comparable so traces can assert compatibility.
  friend bool operator==(const TimeGrid&, const TimeGrid&) = default;
};

/// Default grid used by the experiments: 10-minute periods of 20 x 30 s
/// slots, 144 periods/day (a full 24 h day).
constexpr TimeGrid default_grid(std::size_t n_days = 1) noexcept {
  return TimeGrid{n_days, 144, 20, 30.0};
}

}  // namespace solsched::solar
