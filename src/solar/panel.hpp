// Solar panel model.
//
// The paper's node carries a 3.5 cm x 4.5 cm panel with a tested average
// converting efficiency of 6% (Sec. 6.1); harvested power is
// irradiance x area x efficiency.
#pragma once

namespace solsched::solar {

/// Converts irradiance (W/m^2) into harvested electrical power (W).
class SolarPanel {
 public:
  /// area_m2 and efficiency must be positive; efficiency in (0, 1].
  SolarPanel(double area_m2, double efficiency);

  /// Harvested power (W) for the given irradiance (W/m^2).
  double power_w(double irradiance_w_m2) const noexcept {
    return irradiance_w_m2 * area_m2_ * efficiency_;
  }

  double area_m2() const noexcept { return area_m2_; }
  double efficiency() const noexcept { return efficiency_; }

  /// The paper's panel: 3.5 x 4.5 cm^2 at 6% efficiency (~94.5 mW peak under
  /// 1000 W/m^2).
  static SolarPanel paper_panel();

 private:
  double area_m2_;
  double efficiency_;
};

}  // namespace solsched::solar
