// Container for harvested-power time series P^s_{i,j,m} (Table 1).
#pragma once

#include <cstddef>
#include <vector>

#include "solar/time_grid.hpp"

namespace solsched::solar {

/// Average harvested electrical power per slot, in watts, aligned to a
/// TimeGrid. This is the panel's *output* power (irradiance x area x
/// efficiency), i.e. the P^s of the paper.
class SolarTrace {
 public:
  SolarTrace() = default;

  /// Creates a trace over `grid` with all-zero power.
  explicit SolarTrace(const TimeGrid& grid);

  /// Creates a trace over `grid` from a flat per-slot power vector.
  /// Throws std::invalid_argument if sizes disagree.
  SolarTrace(const TimeGrid& grid, std::vector<double> power_w);

  const TimeGrid& grid() const noexcept { return grid_; }

  /// Power of slot m in period j on day i (watts).
  double at(std::size_t day, std::size_t period, std::size_t slot) const;
  /// Power by flattened slot index (watts).
  double at_flat(std::size_t flat) const { return power_w_[flat]; }
  /// Mutable access by flattened index.
  double& at_flat(std::size_t flat) { return power_w_[flat]; }

  /// All N_s slot powers of one period (watts).
  std::vector<double> period_powers(std::size_t day, std::size_t period) const;

  /// Harvested energy over one period (joules).
  double period_energy_j(std::size_t day, std::size_t period) const;
  /// Harvested energy over one day (joules).
  double day_energy_j(std::size_t day) const;
  /// Harvested energy over the whole trace (joules).
  double total_energy_j() const;

  /// Peak slot power over the whole trace (watts).
  double peak_power_w() const;

  /// Returns a new trace with every slot scaled by `factor` (>= 0).
  SolarTrace scaled(double factor) const;

  /// Returns the sub-trace of exactly one day (grid with n_days == 1).
  SolarTrace day_slice(std::size_t day) const;

  /// Concatenates day-long traces with identical period/slot structure.
  static SolarTrace concat_days(const std::vector<SolarTrace>& days);

  /// Raw flat power vector (watts, one entry per slot).
  const std::vector<double>& raw() const noexcept { return power_w_; }

 private:
  TimeGrid grid_{};
  std::vector<double> power_w_;
};

}  // namespace solsched::solar
