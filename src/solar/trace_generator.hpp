// Multi-day solar trace generation (NREL MIDC substitute).
//
// Day archetypes are chained with a Markov weather model so that consecutive
// days are correlated (clear spells, rainy fronts) — the property behind the
// paper's Fig. 10a finding that prediction usefulness has a locality horizon.
#pragma once

#include <cstdint>
#include <vector>

#include "solar/irradiance.hpp"
#include "solar/panel.hpp"
#include "solar/solar_trace.hpp"
#include "solar/time_grid.hpp"
#include "util/rng.hpp"

namespace solsched::solar {

/// Configuration of the generator.
struct TraceGeneratorConfig {
  ClearSkyModel clear_sky{};
  SolarPanel panel = SolarPanel::paper_panel();
  std::uint64_t seed = 42;
  /// Row-stochastic day-kind transition matrix, indexed
  /// [from][to] over {Clear, PartlyCloudy, Overcast, Rainy}.
  std::vector<std::vector<double>> weather_transition = {
      {0.60, 0.25, 0.10, 0.05},
      {0.30, 0.40, 0.20, 0.10},
      {0.10, 0.30, 0.40, 0.20},
      {0.10, 0.25, 0.30, 0.35},
  };
};

/// Generates deterministic synthetic harvested-power traces.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGeneratorConfig config = {});

  /// One day of the given archetype on `grid` (grid.n_days forced to 1).
  SolarTrace generate_day(DayKind kind, TimeGrid grid) const;

  /// `n_days` days chained by the Markov weather model, starting from
  /// `first` (the first day is exactly `first`).
  SolarTrace generate_days(std::size_t n_days, TimeGrid day_grid,
                           DayKind first = DayKind::kClear) const;

  /// The day-kind sequence the Markov chain would emit (for inspection).
  std::vector<DayKind> weather_sequence(std::size_t n_days,
                                        DayKind first) const;

  /// The paper's four representative days (Fig. 7): Day1 = clear (highest
  /// yield) through Day4 = rainy (lowest yield).
  std::vector<SolarTrace> four_representative_days(TimeGrid day_grid) const;

  const TraceGeneratorConfig& config() const noexcept { return config_; }

 private:
  SolarTrace day_with_rng(DayKind kind, TimeGrid grid, util::Rng rng) const;

  TraceGeneratorConfig config_;
};

}  // namespace solsched::solar
