#include "solar/panel.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace solsched::solar {

SolarPanel::SolarPanel(double area_m2, double efficiency)
    : area_m2_(area_m2), efficiency_(efficiency) {
  if (area_m2 <= 0.0)
    throw std::invalid_argument("SolarPanel: area must be positive");
  if (efficiency <= 0.0 || efficiency > 1.0)
    throw std::invalid_argument("SolarPanel: efficiency must be in (0, 1]");
}

SolarPanel SolarPanel::paper_panel() {
  return SolarPanel{util::cm2_to_m2(3.5 * 4.5), 0.06};
}

}  // namespace solsched::solar
