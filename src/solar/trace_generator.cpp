#include "solar/trace_generator.hpp"

#include <stdexcept>

namespace solsched::solar {

TraceGenerator::TraceGenerator(TraceGeneratorConfig config)
    : config_(std::move(config)) {
  const auto& t = config_.weather_transition;
  if (t.size() != 4)
    throw std::invalid_argument("TraceGenerator: transition matrix must be 4x4");
  for (const auto& row : t)
    if (row.size() != 4)
      throw std::invalid_argument(
          "TraceGenerator: transition matrix must be 4x4");
}

SolarTrace TraceGenerator::day_with_rng(DayKind kind, TimeGrid grid,
                                        util::Rng rng) const {
  grid.n_days = 1;
  SolarTrace trace(grid);
  CloudProcess clouds(kind, rng);
  for (std::size_t flat = 0; flat < grid.total_slots(); ++flat) {
    const double tod = grid.time_of_day_s(flat) + 0.5 * grid.dt_s;
    const double clear = config_.clear_sky.irradiance(tod);
    const double attenuation = clouds.step(grid.dt_s);
    trace.at_flat(flat) = config_.panel.power_w(clear * attenuation);
  }
  return trace;
}

SolarTrace TraceGenerator::generate_day(DayKind kind, TimeGrid grid) const {
  // Seed depends on the archetype so different kinds differ even with the
  // same generator seed.
  util::Rng rng(config_.seed ^ (0x1234abcdull + static_cast<int>(kind)));
  return day_with_rng(kind, grid, rng);
}

std::vector<DayKind> TraceGenerator::weather_sequence(std::size_t n_days,
                                                      DayKind first) const {
  util::Rng rng(config_.seed ^ 0x5eed0123ull);
  std::vector<DayKind> seq;
  seq.reserve(n_days);
  DayKind current = first;
  for (std::size_t d = 0; d < n_days; ++d) {
    seq.push_back(current);
    const auto& row = config_.weather_transition[static_cast<int>(current)];
    current = static_cast<DayKind>(rng.weighted_index(row));
  }
  return seq;
}

SolarTrace TraceGenerator::generate_days(std::size_t n_days, TimeGrid day_grid,
                                         DayKind first) const {
  const auto kinds = weather_sequence(n_days, first);
  util::Rng day_seeds(config_.seed ^ 0xdda75eedull);
  std::vector<SolarTrace> days;
  days.reserve(n_days);
  for (std::size_t d = 0; d < n_days; ++d)
    days.push_back(day_with_rng(kinds[d], day_grid, day_seeds.split()));
  return SolarTrace::concat_days(days);
}

std::vector<SolarTrace> TraceGenerator::four_representative_days(
    TimeGrid day_grid) const {
  return {
      generate_day(DayKind::kClear, day_grid),
      generate_day(DayKind::kPartlyCloudy, day_grid),
      generate_day(DayKind::kOvercast, day_grid),
      generate_day(DayKind::kRainy, day_grid),
  };
}

}  // namespace solsched::solar
