#include "solar/csv_trace.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace solsched::solar {

std::vector<double> parse_csv_column(const std::string& csv_text,
                                     std::size_t column) {
  std::vector<double> values;
  std::istringstream lines(csv_text);
  std::string line;
  while (std::getline(lines, line)) {
    // Split on commas, take the requested field.
    std::size_t start = 0;
    std::string field;
    for (std::size_t c = 0;; ++c) {
      const std::size_t comma = line.find(',', start);
      const std::string cell =
          line.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (c == column) {
        field = cell;
        break;
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (field.empty()) continue;
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str()) continue;  // Header or non-numeric row.
    // strtod happily parses "nan" and "inf" — a corrupt logger cell must be
    // skipped like any other non-numeric row, not fed into the energy model.
    if (!std::isfinite(value)) continue;
    values.push_back(value < 0.0 ? 0.0 : value);
  }
  if (values.empty())
    throw std::invalid_argument("parse_csv_column: no numeric rows");
  return values;
}

std::vector<double> resample_to_grid(const std::vector<double>& samples,
                                     const TimeGrid& grid) {
  const std::size_t n_slots = grid.total_slots();
  std::vector<double> out(n_slots, 0.0);
  if (samples.empty()) return out;
  const double stride =
      static_cast<double>(samples.size()) / static_cast<double>(n_slots);
  for (std::size_t s = 0; s < n_slots; ++s) {
    const auto lo = static_cast<std::size_t>(static_cast<double>(s) * stride);
    auto hi = static_cast<std::size_t>(static_cast<double>(s + 1) * stride);
    hi = std::min(std::max(hi, lo + 1), samples.size());
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += samples[std::min(i, samples.size() - 1)];
    out[s] = acc / static_cast<double>(hi - lo);
  }
  return out;
}

SolarTrace trace_from_power_csv(const std::string& csv_text,
                                const TimeGrid& grid, std::size_t column) {
  return SolarTrace(grid,
                    resample_to_grid(parse_csv_column(csv_text, column), grid));
}

SolarTrace trace_from_irradiance_csv(const std::string& csv_text,
                                     const TimeGrid& grid,
                                     const SolarPanel& panel,
                                     std::size_t column) {
  std::vector<double> irradiance = parse_csv_column(csv_text, column);
  for (double& x : irradiance) x = panel.power_w(x);
  return SolarTrace(grid, resample_to_grid(irradiance, grid));
}

}  // namespace solsched::solar
