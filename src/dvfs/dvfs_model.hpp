// Dynamic voltage/frequency scaling model (related work [5, 6, 8]).
//
// The paper's comparison space includes harvesting-aware DVFS schedulers:
// instead of switching tasks on and off to match solar power, the node
// slows tasks down. This module models the standard knobs: discrete
// frequency levels f in (0, 1], execution time scaling 1/f, and power
// scaling P(f) = P_nom * (a f^3 + (1 - a)) — a cubic dynamic component
// (V roughly proportional to f) over a static floor. Slowing down reduces
// *power* superlinearly but total *energy* only sublinearly, which is the
// whole DVFS trade: it buys load-matching resolution, not free energy.
#pragma once

#include <cstddef>
#include <vector>

namespace solsched::dvfs {

/// Node-wide DVFS capability.
struct DvfsModel {
  /// Available frequency factors, ascending, each in (0, 1].
  std::vector<double> levels = {0.5, 0.75, 1.0};
  /// Dynamic-power share at full speed (the rest is static/leakage).
  double dynamic_fraction = 0.7;

  /// Power multiplier at frequency factor f.
  double power_scale(double f) const noexcept {
    return dynamic_fraction * f * f * f + (1.0 - dynamic_fraction);
  }

  /// Energy-per-work multiplier at factor f (power / speed): > 1 below
  /// full speed whenever a static floor exists.
  double energy_scale(double f) const noexcept {
    return f > 0.0 ? power_scale(f) / f : 1e18;
  }

  /// True if every level is valid.
  bool valid() const noexcept;
};

/// One task executing at one frequency level during a slot.
struct DvfsAction {
  std::size_t task = 0;
  double frequency = 1.0;  ///< Must be one of the model's levels.
};

}  // namespace solsched::dvfs
