#include "dvfs/dvfs_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sched/sched_util.hpp"

namespace solsched::dvfs {

bool DvfsModel::valid() const noexcept {
  if (levels.empty()) return false;
  double prev = 0.0;
  for (double f : levels) {
    if (f <= prev || f > 1.0) return false;
    prev = f;
  }
  return dynamic_fraction >= 0.0 && dynamic_fraction <= 1.0;
}

namespace {

void validate_actions(const std::vector<DvfsAction>& actions,
                      const task::TaskGraph& graph,
                      const task::PeriodState& state, const DvfsModel& model) {
  std::vector<bool> nvp_busy(graph.nvp_count(), false);
  for (const auto& action : actions) {
    if (action.task >= graph.size())
      throw std::logic_error("dvfs policy chose an unknown task");
    bool level_ok = false;
    for (double f : model.levels)
      level_ok = level_ok || std::fabs(f - action.frequency) < 1e-9;
    if (!level_ok)
      throw std::logic_error("dvfs policy chose an invalid frequency");
    if (state.completed(action.task) || !state.ready(action.task))
      throw std::logic_error("dvfs policy chose an unready task");
    const std::size_t nvp = graph.task(action.task).nvp;
    if (nvp_busy[nvp])
      throw std::logic_error("dvfs policy put two tasks on one NVP");
    nvp_busy[nvp] = true;
  }
}

}  // namespace

nvp::SimResult simulate_dvfs(const task::TaskGraph& graph,
                             const solar::SolarTrace& trace,
                             DvfsScheduler& policy,
                             const nvp::NodeConfig& config,
                             const DvfsModel& model) {
  if (!model.valid())
    throw std::invalid_argument("simulate_dvfs: invalid DVFS model");

  const solar::TimeGrid& grid = trace.grid();
  storage::CapacitorBank bank = config.make_bank();
  const storage::Pmu pmu(config.pmu);
  task::PeriodState state(graph);

  nvp::SimResult result;
  result.periods.reserve(grid.total_periods());
  result.initial_bank_energy_j = bank.total_energy_j();

  for (std::size_t day = 0; day < grid.n_days; ++day) {
    for (std::size_t period = 0; period < grid.n_periods; ++period) {
      state.reset();
      nvp::PeriodRecord record;
      record.day = day;
      record.period = period;
      record.cap_index = bank.selected_index();

      for (std::size_t slot = 0; slot < grid.n_slots; ++slot) {
        const double now_s = static_cast<double>(slot) * grid.dt_s;
        state.mark_deadlines(now_s);

        DvfsSlotContext ctx;
        ctx.day = day;
        ctx.period = period;
        ctx.slot = slot;
        ctx.now_in_period_s = now_s;
        ctx.solar_w = trace.at(day, period, slot);
        ctx.grid = &grid;
        ctx.graph = &graph;
        ctx.state = &state;
        ctx.bank = &bank;
        ctx.pmu = &pmu;
        ctx.model = &model;

        const auto actions = policy.schedule_slot(ctx);
        validate_actions(actions, graph, state, model);

        double load_w = 0.0;
        for (const auto& a : actions)
          load_w += graph.task(a.task).power_w *
                    model.power_scale(a.frequency);

        const storage::SlotFlow flow =
            pmu.run_slot(ctx.solar_w, load_w, bank, grid.dt_s);
        if (!flow.brownout)
          for (const auto& a : actions)
            state.execute(a.task, a.frequency * grid.dt_s);
        else
          ++record.brownout_slots;

        record.solar_in_j += flow.solar_in_j;
        record.load_served_j += flow.direct_supplied_j + flow.cap_supplied_j;
        record.stored_j += flow.stored_j;
        record.migrated_in_j += flow.migrated_in_j;
        record.cap_supplied_j += flow.cap_supplied_j;
        record.conversion_loss_j += flow.conversion_loss_j;
        record.leakage_loss_j += flow.leakage_loss_j;
        record.spilled_j += flow.spilled_j;
      }

      state.mark_deadlines(grid.period_s());
      record.dmr = state.dmr();
      record.misses = state.miss_count();
      record.completions = state.completed_count();
      result.periods.push_back(record);
    }
  }
  result.final_bank_energy_j = bank.total_energy_j();
  return result;
}

std::vector<DvfsAction> DvfsLoadMatcher::schedule_slot(
    const DvfsSlotContext& ctx) {
  const auto& graph = *ctx.graph;
  const auto& state = *ctx.state;
  const auto& model = *ctx.model;
  const double dt = ctx.grid->dt_s;
  const double target_w = ctx.solar_w * ctx.pmu->config().direct_eta;
  const double max_load_w =
      ctx.pmu->supplyable_j(ctx.solar_w, *ctx.bank, dt) / dt;

  const auto by_nvp =
      sched::candidates_by_nvp(graph, state, ctx.now_in_period_s, {});

  // Per NVP: the EDF head plus its feasible frequency options.
  struct Head {
    std::size_t task;
    double min_required_f;  ///< Lowest rate that can still meet the deadline.
    bool forced;            ///< Must run at >= min_required_f this slot.
  };
  std::vector<Head> heads;
  for (const auto& list : by_nvp) {
    if (list.empty()) continue;
    const std::size_t id = list.front();
    const auto& t = graph.task(id);
    const double time_left = t.deadline_s - ctx.now_in_period_s;
    const double remaining = state.remaining_s(id);
    // Work rate needed from now on to finish by the deadline.
    const double required =
        time_left > 0.0 ? remaining / time_left : 2.0;
    // Forced when even full speed leaves no slack beyond this slot.
    const bool forced = remaining > (time_left - dt) + 1e-9;
    heads.push_back({id, required, forced});
  }

  // Enumerate per-head options: off (frequency 0 marker) or any level that
  // keeps the deadline reachable; pick the combination whose scaled load
  // is closest to the solar target without exceeding the supplyable power.
  const std::size_t n = heads.size();
  std::vector<std::vector<double>> options(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!heads[i].forced) options[i].push_back(0.0);  // Off is allowed.
    for (double f : model.levels) {
      // Running below the required rate now only shrinks future slack;
      // allow it only when not forced (laziness), require >= when forced.
      if (heads[i].forced && f + 1e-9 < std::min(heads[i].min_required_f,
                                                 model.levels.back()))
        continue;
      options[i].push_back(f);
    }
    if (options[i].empty()) options[i].push_back(model.levels.back());
  }

  std::vector<std::size_t> pick(n, 0);
  std::vector<std::size_t> best_pick;
  double best_cost = std::numeric_limits<double>::max();
  // Odometer enumeration over option combinations (<= 4^6 + forced limits).
  while (true) {
    double load_w = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double f = options[i][pick[i]];
      if (f > 0.0)
        load_w += graph.task(heads[i].task).power_w * model.power_scale(f);
    }
    if (load_w <= max_load_w + 1e-12) {
      const double cost = std::fabs(target_w - load_w);
      if (cost < best_cost - 1e-12) {
        best_cost = cost;
        best_pick = pick;
      }
    }
    // Advance the odometer.
    std::size_t i = 0;
    for (; i < n; ++i) {
      if (++pick[i] < options[i].size()) break;
      pick[i] = 0;
    }
    if (i == n) break;
    if (n == 0) break;
  }

  std::vector<DvfsAction> actions;
  if (best_pick.empty()) return actions;  // Nothing feasible: idle slot.
  for (std::size_t i = 0; i < n; ++i) {
    const double f = options[i][best_pick[i]];
    if (f > 0.0) actions.push_back({heads[i].task, f});
  }
  return actions;
}

}  // namespace solsched::dvfs
