// Slot-level simulator for DVFS-capable nodes.
//
// Mirrors nvp::simulate but lets the policy pick a frequency per task per
// slot: execution advances by f * dt, the drawn power is scaled by the
// DVFS power law. Everything else — the dual-channel PMU, the capacitor
// bank, deadline bookkeeping, the all-or-nothing brownout rule — is shared
// with the main engine, so on/off scheduling is exactly the special case
// levels = {1.0}.
#pragma once

#include <string>
#include <vector>

#include "dvfs/dvfs_model.hpp"
#include "nvp/node_config.hpp"
#include "nvp/sim_result.hpp"
#include "solar/solar_trace.hpp"
#include "task/period_state.hpp"
#include "task/task_graph.hpp"

namespace solsched::dvfs {

/// Read-only view handed to a DVFS policy each slot.
struct DvfsSlotContext {
  std::size_t day = 0;
  std::size_t period = 0;
  std::size_t slot = 0;
  double now_in_period_s = 0.0;
  double solar_w = 0.0;
  const solar::TimeGrid* grid = nullptr;
  const task::TaskGraph* graph = nullptr;
  const task::PeriodState* state = nullptr;
  const storage::CapacitorBank* bank = nullptr;
  const storage::Pmu* pmu = nullptr;
  const DvfsModel* model = nullptr;
};

/// A frequency-aware scheduling policy.
class DvfsScheduler {
 public:
  virtual ~DvfsScheduler() = default;
  virtual std::string name() const = 0;
  virtual std::vector<DvfsAction> schedule_slot(
      const DvfsSlotContext& ctx) = 0;
};

/// Runs `policy` over `trace`; validates every action (known task, valid
/// level, readiness, one task per NVP) and throws std::logic_error on
/// violations.
nvp::SimResult simulate_dvfs(const task::TaskGraph& graph,
                             const solar::SolarTrace& trace,
                             DvfsScheduler& policy,
                             const nvp::NodeConfig& config,
                             const DvfsModel& model);

/// Harvesting-aware DVFS load matcher ([5, 6]-style): per slot, picks a
/// frequency (or off) for each NVP's most urgent ready task so the total
/// scaled load hugs the usable solar power; deadline-critical tasks get
/// the lowest frequency that still makes the deadline (energy-minimal
/// among the feasible ones), and the whole set is shed to the supplyable
/// power like every other policy.
class DvfsLoadMatcher final : public DvfsScheduler {
 public:
  std::string name() const override { return "DVFS-match"; }
  std::vector<DvfsAction> schedule_slot(const DvfsSlotContext& ctx) override;
};

}  // namespace solsched::dvfs
