#include "core/pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "nvp/node_sim.hpp"
#include "sched/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/mathx.hpp"

namespace solsched::core {
namespace {

/// Wraps the DP oracle, capturing (observable input, oracle decision) pairs
/// while the oracle executes on the training trace.
class SampleRecorder final : public nvp::Scheduler {
 public:
  SampleRecorder(sched::OptimalScheduler& oracle, std::size_t n_slots,
                 std::size_t n_caps, std::size_t n_tasks, double alpha_cap)
      : oracle_(&oracle),
        n_slots_(n_slots),
        n_caps_(n_caps),
        n_tasks_(n_tasks),
        alpha_cap_(alpha_cap) {}

  std::string name() const override { return "SampleRecorder"; }

  void begin_trace(const task::TaskGraph& graph, const nvp::NodeConfig& config,
                   const solar::SolarTrace& trace) override {
    oracle_->begin_trace(graph, config, trace);
  }

  nvp::PeriodPlan begin_period(const nvp::PeriodContext& ctx) override {
    const ann::Vector x =
        sched::ProposedScheduler::build_input(ctx, n_slots_);

    const nvp::PeriodPlan plan = oracle_->begin_period(ctx);
    const std::size_t flat = ctx.grid->flat_period(ctx.day, ctx.period);
    const sched::PlannedPeriod& planned = oracle_->plan().at(flat);

    ann::Vector y(n_caps_ + 1 + n_tasks_, 0.0);
    y[planned.cap_index] = 1.0;
    y[n_caps_] = util::clamp(planned.alpha / alpha_cap_, 0.0, 1.0);
    for (std::size_t n = 0; n < n_tasks_; ++n)
      y[n_caps_ + 1 + n] = planned.te.empty() || planned.te[n] ? 1.0 : 0.0;

    samples_.push_back(ann::Sample{x, y});
    return plan;
  }

  std::vector<std::size_t> schedule_slot(const nvp::SlotContext& ctx) override {
    return oracle_->schedule_slot(ctx);
  }

  std::vector<ann::Sample> take_samples() { return std::move(samples_); }

 private:
  sched::OptimalScheduler* oracle_;
  std::size_t n_slots_;
  std::size_t n_caps_;
  std::size_t n_tasks_;
  double alpha_cap_;
  std::vector<ann::Sample> samples_;
};

}  // namespace

TrainedController train_pipeline(const task::TaskGraph& graph,
                                 const solar::SolarTrace& training_trace,
                                 const nvp::NodeConfig& base,
                                 const PipelineConfig& config) {
  TrainedController out;
  out.node = base;
  out.online = config.online;

  // ---- Step 1: capacitor sizing -----------------------------------------
  if (config.run_sizing) {
    OBS_SPAN("pipeline.sizing");
    sizing::SizingConfig sizing_cfg = config.sizing;
    sizing_cfg.v_low = base.v_low;
    sizing_cfg.v_high = base.v_high;
    sizing_cfg.pmu = base.pmu;
    sizing_cfg.regulators = base.regulators;
    sizing_cfg.leakage = base.leakage;
    out.sizing = sizing::size_capacitors(graph, training_trace, config.n_caps,
                                         sizing_cfg);
    out.node.capacities_f = out.sizing.capacities_f;
    out.node.initial_cap = 0;
  }

  // ---- Step 2: DP oracle on the training trace + sample recording --------
  const solar::TimeGrid& grid = training_trace.grid();
  const double alpha_cap = 3.0;
  sched::OptimalConfig dp_cfg = config.dp;
  if (dp_cfg.use_option_cache && !dp_cfg.shared_cache)
    dp_cfg.shared_cache = std::make_shared<sched::PeriodOptionCache>();
  sched::OptimalScheduler oracle(dp_cfg);
  SampleRecorder recorder(oracle, grid.n_slots, out.node.capacities_f.size(),
                          graph.size(), alpha_cap);
  std::vector<ann::Sample> samples;
  {
    OBS_SPAN("pipeline.oracle");
    const nvp::SimResult oracle_run =
        nvp::simulate(graph, training_trace, recorder, out.node);
    out.oracle_dmr = oracle_run.overall_dmr();
    out.lut = oracle.lut();
    out.option_cache = dp_cfg.shared_cache;
    out.dp_cache_stats = oracle.option_cache_stats();
    samples = recorder.take_samples();
  }
  out.n_samples = samples.size();
  OBS_COUNTER_ADD("pipeline.samples", samples.size());

  // ---- Step 3: DBN training ----------------------------------------------
  // Normalize inputs by physical ranges: solar slots by the trace peak,
  // voltages by V_H, accumulated DMR is already in [0, 1].
  const double solar_max = std::max(1e-6, training_trace.peak_power_w());
  const std::size_t n_in =
      grid.n_slots + out.node.capacities_f.size() + 1;
  ann::Vector mins(n_in, 0.0), maxs(n_in, 1.0);
  for (std::size_t m = 0; m < grid.n_slots; ++m) maxs[m] = solar_max;
  for (std::size_t h = 0; h < out.node.capacities_f.size(); ++h)
    maxs[grid.n_slots + h] = base.v_high;
  ann::Normalizer norm;
  norm.set_ranges(std::move(mins), std::move(maxs));

  for (auto& s : samples) s.x = norm.transform(s.x);

  const std::size_t n_out = out.node.capacities_f.size() + 1 + graph.size();
  auto dbn = std::make_shared<ann::Dbn>(n_in, n_out, config.dbn);
  ann::DbnTrainReport report;
  {
    OBS_SPAN("pipeline.dbn_train");
    report = dbn->train(samples);
  }
  out.train_mse = report.finetune_loss;
  OBS_GAUGE_SET("pipeline.train_mse", out.train_mse);
  OBS_COUNTER_ADD("pipeline.runs", 1);

  out.model.dbn = std::move(dbn);
  out.model.input_norm = std::move(norm);
  out.model.capacities_f = out.node.capacities_f;
  out.model.n_slots = grid.n_slots;
  out.model.n_tasks = graph.size();
  out.model.alpha_cap = alpha_cap;
  return out;
}

std::unique_ptr<sched::ProposedScheduler> make_proposed(
    const TrainedController& controller) {
  sched::SchedulerContext ctx;
  ctx.model = &controller.model;
  ctx.online = controller.online;
  std::unique_ptr<nvp::Scheduler> policy = sched::make_scheduler("proposed", ctx);
  // The registry hands back the base interface; this helper's consumers
  // (the serve engine, ablation tools) need the Proposed-specific
  // accessors, so narrow the type here — the one place that knows the
  // "proposed" entry builds a ProposedScheduler.
  auto* proposed = dynamic_cast<sched::ProposedScheduler*>(policy.get());
  if (!proposed)
    throw std::logic_error(
        "make_proposed: registry entry \"proposed\" built an unexpected type");
  policy.release();
  return std::unique_ptr<sched::ProposedScheduler>(proposed);
}

}  // namespace solsched::core
