#include "core/overhead.hpp"

namespace solsched::core {

OverheadReport estimate_overhead(const TrainedController& controller,
                                 const task::TaskGraph& graph,
                                 const NodeCpuModel& cpu) {
  OverheadReport report;

  // Coarse: one DBN forward pass (MACs = sum of layer weight counts) plus
  // normalization and decode, once per period.
  const ann::Mlp& net = controller.model.dbn->network();
  std::size_t macs = 0;
  for (std::size_t l = 0; l < net.n_layers(); ++l)
    macs += net.layer_weights(l).rows() * net.layer_weights(l).cols() +
            net.layer_bias(l).size();
  macs += controller.model.input_norm.dims() * 2;  // Normalization.
  macs += net.n_outputs();                         // Decode pass.
  report.coarse_macs = macs;

  // Fine: per-slot candidate collection (N dependency checks), EDF ordering
  // (~N log N compares) and the intra-mode subset scan over per-NVP heads
  // (2^k combos of k adds, k = NVP count, <= 6).
  const std::size_t n = graph.size();
  const std::size_t k = graph.nvp_count();
  std::size_t fine = n * 8;  // Readiness + deadline bookkeeping.
  std::size_t log_n = 1;
  while ((std::size_t{1} << log_n) < (n ? n : 1)) ++log_n;
  fine += n * log_n * 2;                        // Ordering.
  fine += (std::size_t{1} << k) * (k + 2);      // Load-match subset scan.
  report.fine_macs = fine;

  const double cycles_coarse =
      static_cast<double>(report.coarse_macs) * cpu.cycles_per_mac;
  const double cycles_fine =
      static_cast<double>(report.fine_macs) * cpu.cycles_per_mac;
  report.coarse_time_s = cycles_coarse / cpu.clock_hz;
  report.fine_time_s = cycles_fine / cpu.clock_hz;

  const std::size_t n_slots = controller.model.n_slots;
  report.overhead_energy_j =
      report.coarse_time_s * cpu.coarse_power_w +
      static_cast<double>(n_slots) * report.fine_time_s * cpu.fine_power_w;

  // Workload reference: the benchmark's full energy demand per period.
  report.workload_energy_j = graph.total_energy_j();
  const double total = report.overhead_energy_j + report.workload_energy_j;
  report.energy_fraction =
      total > 0.0 ? report.overhead_energy_j / total : 0.0;
  return report;
}

}  // namespace solsched::core
