// Persistence of trained controllers.
//
// The offline pipeline is run on a workstation; the resulting model (DBN
// weights, normalizer ranges, sized capacitor bank, online thresholds) is
// what actually ships to the node. This module round-trips that bundle
// through a plain-text format.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace solsched::core {

/// Serializes the deployable parts of a controller (model, bank, online
/// thresholds; offline diagnostics like the LUT and sizing are omitted).
std::string serialize_controller(const TrainedController& controller);

/// Rebuilds a controller from serialize_controller() output. The node
/// config carries the bank and grid; physics models use the library
/// defaults. Throws std::invalid_argument on malformed input.
TrainedController deserialize_controller(const std::string& text);

/// File convenience wrappers; save returns false on I/O failure, load
/// throws on I/O failure or parse errors.
bool save_controller(const TrainedController& controller,
                     const std::string& path);
TrainedController load_controller(const std::string& path);

}  // namespace solsched::core
