#include "core/controller_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace solsched::core {

namespace {
constexpr const char* kMagic = "solsched-controller-v1";
}

std::string serialize_controller(const TrainedController& controller) {
  const sched::ProposedModel& model = controller.model;
  if (!model.dbn) throw std::invalid_argument("serialize_controller: no DBN");
  std::ostringstream out;
  out.precision(17);
  out << kMagic << '\n';

  out << "grid " << controller.node.grid.n_days << ' '
      << controller.node.grid.n_periods << ' '
      << controller.node.grid.n_slots << ' ' << controller.node.grid.dt_s
      << '\n';

  out << "caps " << controller.node.capacities_f.size();
  for (double c : controller.node.capacities_f) out << ' ' << c;
  out << '\n';

  out << "node " << controller.node.v_low << ' ' << controller.node.v_high
      << ' ' << controller.node.initial_cap << ' '
      << controller.node.initial_usable_j << '\n';

  out << "model " << model.n_slots << ' ' << model.n_tasks << ' '
      << model.alpha_cap << '\n';

  out << "online " << controller.online.e_th_j << ' '
      << controller.online.delta << ' ' << controller.online.margin_slots
      << ' ' << (controller.online.greedy_bank ? 1 : 0) << ' '
      << controller.online.fill_fraction << '\n';

  out << "norm " << model.input_norm.dims() << '\n';
  for (double v : model.input_norm.mins()) out << v << ' ';
  out << '\n';
  for (double v : model.input_norm.maxs()) out << v << ' ';
  out << '\n';

  out << model.dbn->network().serialize();
  return out.str();
}

TrainedController deserialize_controller(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  if (!(in >> token) || token != kMagic)
    throw std::invalid_argument("deserialize_controller: bad magic");

  TrainedController out;

  auto expect = [&](const char* keyword) {
    if (!(in >> token) || token != keyword)
      throw std::invalid_argument(
          std::string("deserialize_controller: expected ") + keyword);
  };

  expect("grid");
  if (!(in >> out.node.grid.n_days >> out.node.grid.n_periods >>
        out.node.grid.n_slots >> out.node.grid.dt_s))
    throw std::invalid_argument("deserialize_controller: bad grid");

  expect("caps");
  std::size_t n_caps = 0;
  if (!(in >> n_caps) || n_caps == 0)
    throw std::invalid_argument("deserialize_controller: bad cap count");
  out.node.capacities_f.assign(n_caps, 0.0);
  for (double& c : out.node.capacities_f)
    if (!(in >> c))
      throw std::invalid_argument("deserialize_controller: bad capacity");

  expect("node");
  if (!(in >> out.node.v_low >> out.node.v_high >> out.node.initial_cap >>
        out.node.initial_usable_j))
    throw std::invalid_argument("deserialize_controller: bad node");

  expect("model");
  if (!(in >> out.model.n_slots >> out.model.n_tasks >> out.model.alpha_cap))
    throw std::invalid_argument("deserialize_controller: bad model header");

  expect("online");
  int greedy = 0;
  if (!(in >> out.online.e_th_j >> out.online.delta >>
        out.online.margin_slots >> greedy >> out.online.fill_fraction))
    throw std::invalid_argument("deserialize_controller: bad thresholds");
  out.online.greedy_bank = greedy != 0;

  expect("norm");
  std::size_t dims = 0;
  if (!(in >> dims) || dims == 0)
    throw std::invalid_argument("deserialize_controller: bad norm dims");
  ann::Vector mins(dims), maxs(dims);
  for (double& v : mins)
    if (!(in >> v))
      throw std::invalid_argument("deserialize_controller: bad norm mins");
  for (double& v : maxs)
    if (!(in >> v))
      throw std::invalid_argument("deserialize_controller: bad norm maxs");
  out.model.input_norm.set_ranges(std::move(mins), std::move(maxs));

  // The remainder is the MLP blob.
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  out.model.dbn = std::make_shared<ann::Dbn>(
      ann::Dbn::from_network(ann::Mlp::deserialize(rest)));

  out.model.capacities_f = out.node.capacities_f;
  // A structurally well-formed file can still carry unusable parameters
  // (zero-slot grid, negative capacity, NaN voltage bounds...). Reject it
  // here, with every finding listed, rather than deep inside a simulation.
  out.node.validate();
  return out;
}

bool save_controller(const TrainedController& controller,
                     const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << serialize_controller(controller);
  return static_cast<bool>(file);
}

TrainedController load_controller(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::invalid_argument("load_controller: cannot open " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return deserialize_controller(buffer.str());
}

}  // namespace solsched::core
