// Experiment runner: one (benchmark, trace) against a set of registered
// policies, producing the rows Figures 8-10 are built from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "nvp/node_sim.hpp"
#include "obs/sim_trace.hpp"

namespace solsched::core {

/// Which policies to include in a comparison run.
struct ComparisonConfig {
  /// Canonical sched::Registry ids of the policies to run. Rows come back
  /// in the registry's fixed registration order regardless of the order
  /// (or duplicates) here — the pre-registry behaviour — so campaign
  /// journals are insensitive to how a spec lists its scheduler axis.
  /// Unknown ids throw std::out_of_range listing the known ids.
  std::vector<std::string> scheduler_ids = {"inter", "intra", "proposed",
                                            "optimal"};
  bool record_events = false;  ///< Attach a SimTrace to every row's sim.
  /// Optional shared fault injector (DESIGN.md §11): every row simulates
  /// under the same precomputed fault tables, and the proposed scheduler
  /// additionally receives the controller-corruption stream. Read-only, so
  /// sharing across the parallel rows is safe; must outlive the call.
  const fault::FaultInjector* faults = nullptr;
  sched::OptimalConfig dp{};
};

/// One policy's outcome on one (benchmark, trace).
struct ComparisonRow {
  /// Canonical registry id ("inter", "proposed_volatile", ...): the lookup
  /// key for row_of and any cross-layer reference to this row.
  std::string id;
  /// Display name ("Inter-task", ...): what human-facing tables and the
  /// campaign journal's `algo` field print. New zoo policies use their id
  /// as the display name; the paper-era policies keep their historic
  /// names so pre-registry journals stay byte-identical.
  std::string algo;
  double dmr = 0.0;
  double energy_utilization = 0.0;
  double migration_efficiency = 0.0;
  std::size_t brownouts = 0;
  nvp::SimResult sim;  ///< Full per-period records for series plots.
  /// Structured event trace of this row's simulation; non-null only when
  /// ComparisonConfig::record_events was set. Each row owns its own trace,
  /// so parallel rows never share a sink and the events stay deterministic.
  std::shared_ptr<obs::SimTrace> events;
};

/// Runs the configured policies. The trained controller supplies both the
/// sized capacitor bank (used for *all* policies, so the storage hardware is
/// identical) and the DBN for the proposed policy; when null, the node's
/// own capacitor list is used and policies that need a controller are
/// skipped.
std::vector<ComparisonRow> run_comparison(const task::TaskGraph& graph,
                                          const solar::SolarTrace& trace,
                                          const nvp::NodeConfig& node,
                                          const TrainedController* trained,
                                          const ComparisonConfig& config = {});

/// Finds a row by canonical id ("inter", "proposed", ...); throws
/// std::out_of_range listing the ids present when absent.
const ComparisonRow& row_of(const std::vector<ComparisonRow>& rows,
                            const std::string& id);

/// Resilience sweep configuration (DESIGN.md §11): one base fault plan,
/// scaled to a range of intensities; intensity 0 is the fault-free control.
struct ResilienceConfig {
  fault::FaultPlan plan;  ///< Base plan; plan.scaled(intensity) per point.
  std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0};
  /// Registry ids, as in ComparisonConfig ("proposed" needs a controller).
  std::vector<std::string> scheduler_ids = {"inter", "intra", "proposed"};
  /// Also run the proposed policy on a volatile-processor node (progress
  /// wiped at power failures) — the NVP-vs-volatile ablation row, id
  /// "proposed_volatile", displayed as "Proposed (volatile)". Requires
  /// "proposed" on the id list and a trained controller.
  bool volatile_ablation = true;
  /// Attach a SimTrace to every row's sim, as in ComparisonConfig. Enables
  /// per-row deadline-miss attribution in core::resilience_table.
  bool record_events = false;
};

/// One intensity point of the sweep.
struct ResiliencePoint {
  double intensity = 0.0;
  std::vector<ComparisonRow> rows;
};

/// Runs every listed policy at every intensity of `config`, one shared
/// deterministic injector per intensity. Rows execute on the thread pool;
/// results are identical at any SOLSCHED_THREADS setting.
std::vector<ResiliencePoint> run_resilience_sweep(
    const task::TaskGraph& graph, const solar::SolarTrace& trace,
    const nvp::NodeConfig& node, const TrainedController* trained,
    const ResilienceConfig& config);

}  // namespace solsched::core
