// Experiment runner: one (benchmark, trace) against the paper's four
// policies, producing the rows Figures 8-10 are built from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "nvp/node_sim.hpp"
#include "obs/sim_trace.hpp"

namespace solsched::core {

/// Which policies to include in a comparison run.
struct ComparisonConfig {
  bool run_inter = true;    ///< WCMA-based LSA baseline [3].
  bool run_intra = true;    ///< Intra-task load matching [9].
  bool run_proposed = true; ///< Requires a trained controller.
  bool run_optimal = true;  ///< Static DP upper bound.
  bool run_edf = false;     ///< Extra energy-oblivious reference.
  bool run_asap = false;    ///< Extra greedy reference.
  bool run_duty = false;    ///< Extra duty-cycling reference.
  bool record_events = false;  ///< Attach a SimTrace to every row's sim.
  sched::OptimalConfig dp{};
};

/// One policy's outcome on one (benchmark, trace).
struct ComparisonRow {
  std::string algo;
  double dmr = 0.0;
  double energy_utilization = 0.0;
  double migration_efficiency = 0.0;
  std::size_t brownouts = 0;
  nvp::SimResult sim;  ///< Full per-period records for series plots.
  /// Structured event trace of this row's simulation; non-null only when
  /// ComparisonConfig::record_events was set. Each row owns its own trace,
  /// so parallel rows never share a sink and the events stay deterministic.
  std::shared_ptr<obs::SimTrace> events;
};

/// Runs the configured policies. The trained controller supplies both the
/// sized capacitor bank (used for *all* policies, so the storage hardware is
/// identical) and the DBN for the proposed policy; when null, the node's
/// own capacitor list is used and the proposed policy is skipped.
std::vector<ComparisonRow> run_comparison(const task::TaskGraph& graph,
                                          const solar::SolarTrace& trace,
                                          const nvp::NodeConfig& node,
                                          const TrainedController* trained,
                                          const ComparisonConfig& config = {});

/// Finds a row by algorithm name; throws std::out_of_range if absent.
const ComparisonRow& row_of(const std::vector<ComparisonRow>& rows,
                            const std::string& algo);

}  // namespace solsched::core
