// Experiment runner: one (benchmark, trace) against the paper's four
// policies, producing the rows Figures 8-10 are built from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "nvp/node_sim.hpp"
#include "obs/sim_trace.hpp"

namespace solsched::core {

/// Which policies to include in a comparison run.
struct ComparisonConfig {
  bool run_inter = true;    ///< WCMA-based LSA baseline [3].
  bool run_intra = true;    ///< Intra-task load matching [9].
  bool run_proposed = true; ///< Requires a trained controller.
  bool run_optimal = true;  ///< Static DP upper bound.
  bool run_edf = false;     ///< Extra energy-oblivious reference.
  bool run_asap = false;    ///< Extra greedy reference.
  bool run_duty = false;    ///< Extra duty-cycling reference.
  bool record_events = false;  ///< Attach a SimTrace to every row's sim.
  /// Optional shared fault injector (DESIGN.md §11): every row simulates
  /// under the same precomputed fault tables, and the proposed scheduler
  /// additionally receives the controller-corruption stream. Read-only, so
  /// sharing across the parallel rows is safe; must outlive the call.
  const fault::FaultInjector* faults = nullptr;
  sched::OptimalConfig dp{};
};

/// One policy's outcome on one (benchmark, trace).
struct ComparisonRow {
  std::string algo;
  double dmr = 0.0;
  double energy_utilization = 0.0;
  double migration_efficiency = 0.0;
  std::size_t brownouts = 0;
  nvp::SimResult sim;  ///< Full per-period records for series plots.
  /// Structured event trace of this row's simulation; non-null only when
  /// ComparisonConfig::record_events was set. Each row owns its own trace,
  /// so parallel rows never share a sink and the events stay deterministic.
  std::shared_ptr<obs::SimTrace> events;
};

/// Runs the configured policies. The trained controller supplies both the
/// sized capacitor bank (used for *all* policies, so the storage hardware is
/// identical) and the DBN for the proposed policy; when null, the node's
/// own capacitor list is used and the proposed policy is skipped.
std::vector<ComparisonRow> run_comparison(const task::TaskGraph& graph,
                                          const solar::SolarTrace& trace,
                                          const nvp::NodeConfig& node,
                                          const TrainedController* trained,
                                          const ComparisonConfig& config = {});

/// Finds a row by algorithm name; throws std::out_of_range if absent.
const ComparisonRow& row_of(const std::vector<ComparisonRow>& rows,
                            const std::string& algo);

/// Resilience sweep configuration (DESIGN.md §11): one base fault plan,
/// scaled to a range of intensities; intensity 0 is the fault-free control.
struct ResilienceConfig {
  fault::FaultPlan plan;  ///< Base plan; plan.scaled(intensity) per point.
  std::vector<double> intensities = {0.0, 0.5, 1.0, 2.0};
  bool run_inter = true;
  bool run_intra = true;
  bool run_proposed = true;  ///< Requires a trained controller.
  /// Also run the proposed policy on a volatile-processor node (progress
  /// wiped at power failures) — the NVP-vs-volatile ablation row, named
  /// "Proposed (volatile)".
  bool volatile_ablation = true;
  /// Attach a SimTrace to every row's sim, as in ComparisonConfig. Enables
  /// per-row deadline-miss attribution in core::resilience_table.
  bool record_events = false;
};

/// One intensity point of the sweep.
struct ResiliencePoint {
  double intensity = 0.0;
  std::vector<ComparisonRow> rows;
};

/// Runs every enabled policy at every intensity of `config`, one shared
/// deterministic injector per intensity. Rows execute on the thread pool;
/// results are identical at any SOLSCHED_THREADS setting.
std::vector<ResiliencePoint> run_resilience_sweep(
    const task::TaskGraph& graph, const solar::SolarTrace& trace,
    const nvp::NodeConfig& node, const TrainedController* trained,
    const ResilienceConfig& config);

}  // namespace solsched::core
