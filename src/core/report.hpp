// Report generation: text summaries and CSV exports of simulation results.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "nvp/sim_result.hpp"

namespace solsched::core {

/// Multi-line text summary of one simulation (totals + per-day DMR).
std::string summarize(const nvp::SimResult& result, const std::string& title,
                      std::size_t n_days);

/// Per-period CSV of a simulation: day, period, dmr, energy flows.
/// Suitable for plotting Fig. 9-style series offline.
std::string to_csv(const nvp::SimResult& result);

/// Side-by-side text table of comparison rows (Fig. 8-style).
std::string comparison_table(const std::vector<ComparisonRow>& rows);

/// Writes `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace solsched::core
