// Report generation: text summaries and CSV exports of simulation results.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "nvp/sim_result.hpp"
#include "obs/metrics.hpp"

namespace solsched::core {

/// Multi-line text summary of one simulation (totals + per-day DMR).
std::string summarize(const nvp::SimResult& result, const std::string& title,
                      std::size_t n_days);

/// Per-period CSV of a simulation: day, period, dmr, energy flows.
/// Suitable for plotting Fig. 9-style series offline.
std::string to_csv(const nvp::SimResult& result);

/// Side-by-side text table of comparison rows (Fig. 8-style).
std::string comparison_table(const std::vector<ComparisonRow>& rows);

/// Text table of a resilience sweep: one line per (intensity, policy) with
/// DMR and the fault ledger (power failures, backups/restores, fallbacks,
/// volatile-baseline lost progress). Rows that carry an event trace
/// (ResilienceConfig::record_events) gain a per-cause miss attribution
/// column (DESIGN.md §12); traceless rows show "-".
std::string resilience_table(const std::vector<ResiliencePoint>& points);

/// Text rendering of a metrics snapshot: counters/gauges tables plus derived
/// rates (cache hit rate, mean span times). Empty string for an empty
/// snapshot with observability on, so callers can append it unconditionally;
/// a one-line "observability disabled" notice when SOLSCHED_OBS is off, so
/// a run that asked for metrics never reports silence.
std::string metrics_report(const obs::MetricsSnapshot& snapshot);

/// Writes `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace solsched::core
