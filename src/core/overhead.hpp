// Algorithm overhead model (Sec. 6.5).
//
// The paper runs its algorithm on the node's 93.5 kHz nonvolatile processor
// and measures the coarse-grained (per-period DBN analysis) and fine-grained
// (per-slot scheduling) procedures with an oscilloscope. We reproduce the
// estimate analytically: count the multiply-accumulate operations of each
// procedure, cost them at soft-float rates on a 16-bit MCU, and compare the
// resulting energy against the node's workload energy.
#pragma once

#include <cstddef>

#include "core/pipeline.hpp"
#include "task/task_graph.hpp"

namespace solsched::core {

/// Node processor model for overhead accounting.
struct NodeCpuModel {
  double clock_hz = 93.5e3;        ///< The paper's node clock.
  double cycles_per_mac = 200.0;   ///< Soft-float multiply-accumulate cost.
  double coarse_power_w = 3.0e-3;  ///< Active power during coarse analysis.
  double fine_power_w = 2.94e-3;   ///< Active power during slot scheduling.
};

/// Estimated overhead of the online algorithm.
struct OverheadReport {
  std::size_t coarse_macs = 0;   ///< Ops per period (DBN forward + decode).
  std::size_t fine_macs = 0;     ///< Ops per slot (candidate sort + match).
  double coarse_time_s = 0.0;    ///< Per coarse execution.
  double fine_time_s = 0.0;      ///< Per fine execution (one slot).
  double overhead_energy_j = 0.0;  ///< Per period (1 coarse + N_s fine).
  double workload_energy_j = 0.0;  ///< Benchmark energy per period.
  double energy_fraction = 0.0;    ///< overhead / (overhead + workload).
};

/// Computes the overhead estimate for a trained controller's DBN and the
/// given benchmark on the default node CPU.
OverheadReport estimate_overhead(const TrainedController& controller,
                                 const task::TaskGraph& graph,
                                 const NodeCpuModel& cpu = {});

}  // namespace solsched::core
