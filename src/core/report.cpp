#include "core/report.hpp"

#include <fstream>
#include <sstream>
#include <string_view>

#include "obs/analysis/attribution.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace solsched::core {

std::string summarize(const nvp::SimResult& result, const std::string& title,
                      std::size_t n_days) {
  std::ostringstream out;
  out << title << "\n";
  out << "  periods: " << result.periods.size()
      << ", overall DMR: " << util::fmt_pct(result.overall_dmr())
      << ", energy utilization: "
      << util::fmt_pct(result.energy_utilization())
      << ", migration efficiency: "
      << util::fmt_pct(result.migration_efficiency()) << "\n";
  out << "  solar harvested: " << util::fmt(result.total_solar_j(), 0)
      << " J, served to load: " << util::fmt(result.total_served_j(), 0)
      << " J, losses: " << util::fmt(result.total_loss_j(), 0)
      << " J, brownout slots: " << result.total_brownouts() << "\n";
  if (n_days > 1) {
    out << "  per-day DMR:";
    for (std::size_t d = 0; d < n_days; ++d)
      out << " " << util::fmt_pct(result.day_dmr(d));
    out << "\n";
  }
  return out.str();
}

std::string to_csv(const nvp::SimResult& result) {
  util::CsvWriter csv({"day", "period", "dmr", "misses", "completions",
                       "brownouts", "cap_index", "solar_j", "served_j",
                       "stored_j", "cap_supplied_j", "conversion_loss_j",
                       "leakage_loss_j", "spilled_j"});
  for (const auto& p : result.periods)
    csv.add_row(std::vector<double>{
        static_cast<double>(p.day), static_cast<double>(p.period), p.dmr,
        static_cast<double>(p.misses), static_cast<double>(p.completions),
        static_cast<double>(p.brownout_slots),
        static_cast<double>(p.cap_index), p.solar_in_j, p.load_served_j,
        p.stored_j, p.cap_supplied_j, p.conversion_loss_j, p.leakage_loss_j,
        p.spilled_j});
  return csv.str();
}

std::string metrics_report(const obs::MetricsSnapshot& snapshot) {
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    if (!obs::enabled())
      return "observability disabled (SOLSCHED_OBS unset)\n";
    return {};
  }

  std::ostringstream out;
  out << "metrics\n";

  util::TextTable counters;
  counters.set_header({"counter", "total"});
  for (const auto& [name, total] : snapshot.counters)
    counters.add_row({name, std::to_string(total)});
  if (!snapshot.counters.empty()) out << counters.str();

  if (!snapshot.gauges.empty()) {
    util::TextTable gauges;
    gauges.set_header({"gauge", "value"});
    for (const auto& [name, value] : snapshot.gauges)
      gauges.add_row({name, util::fmt(value, 4)});
    out << gauges.str();
  }

  for (const auto& h : snapshot.histograms) {
    out << h.name << ": n=" << h.count << " sum=" << util::fmt(h.sum, 4);
    if (h.count > 0)
      out << " mean=" << util::fmt(h.sum / static_cast<double>(h.count), 4);
    // Nearest-rank quantiles from the bucket counts (same index rule as the
    // campaign aggregates): the quantile resolves to the upper bound of the
    // bucket holding that rank — "<=bound", or ">bound" for the overflow
    // bucket — so latency histograms read without the inspect CLI.
    if (h.count > 0 && !h.bucket_counts.empty()) {
      for (const std::size_t percent : {std::size_t{50}, std::size_t{90},
                                        std::size_t{99}}) {
        const std::uint64_t rank = util::nearest_rank_index(
            static_cast<std::size_t>(h.count), percent);
        std::uint64_t cumulative = 0;
        std::string rendered;
        for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
          cumulative += h.bucket_counts[b];
          if (cumulative > rank) {
            if (b < h.upper_bounds.size())
              rendered = "<=" + util::fmt(h.upper_bounds[b], 4);
            else if (!h.upper_bounds.empty())
              rendered = ">" + util::fmt(h.upper_bounds.back(), 4);
            else
              rendered = ">0";  // Bound-less snapshot: nothing to anchor on.
            break;
          }
        }
        // A hand-built or torn snapshot can sum its buckets below `count`;
        // emit no column rather than a dangling "p50" label.
        if (!rendered.empty()) out << " p" << percent << rendered;
      }
    }
    out << " buckets[";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b) out << " ";
      if (b < h.upper_bounds.size())
        out << "<=" << util::fmt(h.upper_bounds[b], 4) << ":";
      else
        out << "inf:";
      out << h.bucket_counts[b];
    }
    out << "]\n";
  }

  // Derived rates the tables bury: cache hit rate and mean span times.
  const std::uint64_t hits = snapshot.counter_or("sched.option_cache.hits");
  const std::uint64_t misses = snapshot.counter_or("sched.option_cache.misses");
  if (hits + misses > 0)
    out << "option cache hit rate: "
        << util::fmt_pct(static_cast<double>(hits) /
                         static_cast<double>(hits + misses))
        << "\n";
  for (const auto& [name, total] : snapshot.counters) {
    constexpr std::string_view kPrefix = "span.";
    constexpr std::string_view kSuffix = ".total_us";
    if (name.rfind(kPrefix, 0) != 0 || name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0)
      continue;
    const std::string base =
        name.substr(0, name.size() - kSuffix.size());
    const std::uint64_t calls = snapshot.counter_or(base + ".calls");
    out << base.substr(kPrefix.size()) << ": " << total << " us over " << calls
        << " calls";
    if (calls > 0)
      out << " (" << util::fmt(static_cast<double>(total) /
                                   static_cast<double>(calls),
                               1)
          << " us/call)";
    out << "\n";
  }
  return out.str();
}

std::string comparison_table(const std::vector<ComparisonRow>& rows) {
  util::TextTable table;
  table.set_header({"algorithm", "DMR", "energy util", "migration eff",
                    "brownouts"});
  for (const auto& row : rows)
    table.add_row({row.algo, util::fmt_pct(row.dmr),
                   util::fmt_pct(row.energy_utilization),
                   util::fmt_pct(row.migration_efficiency),
                   std::to_string(row.brownouts)});
  return table.str();
}

std::string resilience_table(const std::vector<ResiliencePoint>& points) {
  util::TextTable table;
  table.set_header({"intensity", "algorithm", "DMR", "pf slots", "backups",
                    "restores", "fallbacks", "lost s", "miss causes"});
  for (const auto& point : points)
    for (const auto& row : point.rows) {
      std::string causes = "-";
      if (row.events)
        causes =
            obs::analysis::attribute_misses(row.events->events()).one_line();
      table.add_row({util::fmt(point.intensity, 2), row.algo,
                     util::fmt_pct(row.dmr),
                     std::to_string(row.sim.total_power_failure_slots()),
                     std::to_string(row.sim.total_backups()),
                     std::to_string(row.sim.total_restores()),
                     std::to_string(row.sim.total_fallbacks()),
                     util::fmt(row.sim.total_lost_progress_s(), 1), causes});
    }
  return table.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file);
}

}  // namespace solsched::core
