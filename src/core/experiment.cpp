#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/registry.hpp"
#include "util/thread_pool.hpp"

namespace solsched::core {
namespace {

ComparisonRow run_one(const task::TaskGraph& graph,
                      const solar::SolarTrace& trace,
                      const nvp::NodeConfig& node, nvp::Scheduler& policy,
                      std::string id, std::string name, bool record_events,
                      const fault::FaultInjector* faults = nullptr) {
  ComparisonRow row;
  row.id = std::move(id);
  row.algo = std::move(name);
  // Span names are dynamic (one per policy row), so the ScopedSpan is built
  // only when obs is on — the string allocation never hits the disabled path.
  std::optional<obs::ScopedSpan> span;
  if (obs::enabled()) span.emplace("experiment.row." + row.id);
  if (record_events) row.events = std::make_shared<obs::SimTrace>();
  row.sim = nvp::simulate(graph, trace, policy, node, row.events.get(), faults);
  row.dmr = row.sim.overall_dmr();
  row.energy_utilization = row.sim.energy_utilization();
  row.migration_efficiency = row.sim.migration_efficiency();
  row.brownouts = row.sim.total_brownouts();
  OBS_COUNTER_ADD("experiment.rows", 1);
  return row;
}

/// The best *single* capacitor for the storage-oblivious baselines: the one
/// closest to the mean of the per-day sizing optima, or the largest when no
/// sizing data exists. Shared by run_comparison and run_resilience_sweep so
/// both put the baselines on identical hardware.
nvp::NodeConfig single_cap_baseline(const nvp::NodeConfig& effective,
                                    const TrainedController* trained) {
  nvp::NodeConfig baseline_node = effective;
  std::size_t single = 0;
  if (trained && !trained->sizing.daily_optimal_f.empty()) {
    double mean = 0.0;
    for (double c : trained->sizing.daily_optimal_f) mean += c;
    mean /= static_cast<double>(trained->sizing.daily_optimal_f.size());
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < baseline_node.capacities_f.size(); ++i) {
      const double d = std::fabs(baseline_node.capacities_f[i] - mean);
      if (d < best_d) {
        best_d = d;
        single = i;
      }
    }
  } else {
    for (std::size_t i = 1; i < baseline_node.capacities_f.size(); ++i)
      if (baseline_node.capacities_f[i] >
          baseline_node.capacities_f[single])
        single = i;
  }
  baseline_node.initial_cap = single;
  return baseline_node;
}

/// The scheduler-facing slice of a comparison: everything a registry
/// factory may need, assembled once per (run, intensity). The dp cache
/// defaults to the pipeline's period-option cache so the Optimal row hits
/// on nearly every period of the shared trace.
sched::SchedulerContext make_context(const TrainedController* trained,
                                     sched::OptimalConfig dp,
                                     const fault::FaultInjector* faults) {
  sched::SchedulerContext ctx;
  ctx.dp = std::move(dp);
  ctx.faults = faults;
  if (trained) {
    ctx.model = &trained->model;
    ctx.online = trained->online;
    if (!ctx.dp.shared_cache) ctx.dp.shared_cache = trained->option_cache;
  }
  return ctx;
}

/// One job per listed registry entry, in registration order (the row order
/// contract of ComparisonConfig::scheduler_ids). Unknown ids throw before
/// any job runs; entries needing a controller are skipped when untrained.
/// `ctx`, the nodes, graph and trace are captured by reference and must
/// outlive the returned jobs.
std::vector<std::function<ComparisonRow()>> registry_jobs(
    const task::TaskGraph& graph, const solar::SolarTrace& trace,
    const nvp::NodeConfig& effective, const nvp::NodeConfig& baseline_node,
    const std::vector<std::string>& ids, const sched::SchedulerContext& ctx,
    bool has_controller, bool record_events) {
  const sched::Registry& registry = sched::Registry::global();
  for (const std::string& id : ids) (void)registry.at(id);  // Validate all.

  std::vector<std::function<ComparisonRow()>> jobs;
  for (const sched::SchedulerInfo& info : registry.entries()) {
    if (std::find(ids.begin(), ids.end(), info.id) == ids.end()) continue;
    if (info.needs_controller && !has_controller) continue;
    const nvp::NodeConfig& node = info.sized_bank ? effective : baseline_node;
    jobs.push_back([&graph, &trace, &node, &info, &ctx, record_events] {
      auto policy = info.factory(ctx);
      return run_one(graph, trace, node, *policy, info.id, policy->name(),
                     record_events, ctx.faults);
    });
  }
  return jobs;
}

bool lists(const std::vector<std::string>& ids, const char* id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

std::vector<ComparisonRow> run_comparison(const task::TaskGraph& graph,
                                          const solar::SolarTrace& trace,
                                          const nvp::NodeConfig& node,
                                          const TrainedController* trained,
                                          const ComparisonConfig& config) {
  // All policies run on the same storage hardware: the sized bank when a
  // trained controller is supplied.
  const nvp::NodeConfig& effective = trained ? trained->node : node;

  // The single-storage baselines ([3], [9], ASAP, EDF, the energy-aware
  // zoo) never re-select capacitors: they assume one super capacitor fixed
  // at design time. They get the best *single* choice our sizing flow
  // would make — the mean of the per-day optima (the H = 1 cluster) — on
  // the same physical bank. Without sizing data they fall back to the
  // largest capacitor. Registry entries with `sized_bank` (proposed,
  // optimal) run on the full sized bank instead.
  const nvp::NodeConfig baseline_node = single_cap_baseline(effective, trained);

  // Policy rows are independent simulations: one registry-built factory
  // per listed id, run on the thread pool into pre-sized slots, returned
  // in registration order — identical rows at any thread count.
  const sched::SchedulerContext ctx =
      make_context(trained, config.dp, config.faults);
  const std::vector<std::function<ComparisonRow()>> row_jobs =
      registry_jobs(graph, trace, effective, baseline_node,
                    config.scheduler_ids, ctx, trained != nullptr,
                    config.record_events);

  std::vector<ComparisonRow> rows(row_jobs.size());
  util::parallel_for(row_jobs.size(),
                     [&](std::size_t i) { rows[i] = row_jobs[i](); });
  return rows;
}

const ComparisonRow& row_of(const std::vector<ComparisonRow>& rows,
                            const std::string& id) {
  std::string present;
  for (const auto& row : rows) {
    if (row.id == id) return row;
    if (!present.empty()) present += ", ";
    present += row.id;
  }
  throw std::out_of_range("row_of: no row with id \"" + id +
                          "\" (rows: " + (present.empty() ? "none" : present) +
                          "; registry ids: " +
                          sched::Registry::global().known_ids() + ")");
}

std::vector<ResiliencePoint> run_resilience_sweep(
    const task::TaskGraph& graph, const solar::SolarTrace& trace,
    const nvp::NodeConfig& node, const TrainedController* trained,
    const ResilienceConfig& config) {
  const nvp::NodeConfig& effective = trained ? trained->node : node;
  const nvp::NodeConfig baseline_node = single_cap_baseline(effective, trained);
  nvp::NodeConfig volatile_node = effective;
  volatile_node.volatile_baseline = true;

  // One injector per intensity, built serially up front: construction
  // consumes all the plan's randomness, so the tables are fixed before any
  // row runs and can be shared read-only across the pool.
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  injectors.reserve(config.intensities.size());
  for (double intensity : config.intensities)
    injectors.push_back(std::make_unique<fault::FaultInjector>(
        config.plan.scaled(intensity), trace.grid()));

  // One scheduler context per intensity (the injectors differ), in stable
  // storage: the jobs capture them by reference.
  std::vector<sched::SchedulerContext> contexts;
  contexts.reserve(config.intensities.size());
  for (std::size_t i = 0; i < config.intensities.size(); ++i)
    contexts.push_back(
        make_context(trained, sched::OptimalConfig{}, injectors[i].get()));

  const bool with_volatile = config.volatile_ablation && trained &&
                             lists(config.scheduler_ids, "proposed");

  // Flatten (intensity x policy) into one job list so the pool sees every
  // simulation at once (nested parallel regions would serialize).
  struct Job {
    std::size_t point;
    std::function<ComparisonRow()> run;
  };
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < config.intensities.size(); ++i) {
    const sched::SchedulerContext& ctx = contexts[i];
    for (auto& run :
         registry_jobs(graph, trace, effective, baseline_node,
                       config.scheduler_ids, ctx, trained != nullptr,
                       config.record_events))
      jobs.push_back({i, std::move(run)});
    if (with_volatile)
      jobs.push_back({i, [&graph, &trace, &volatile_node, &ctx, &config] {
                        auto policy = sched::make_scheduler("proposed", ctx);
                        return run_one(graph, trace, volatile_node, *policy,
                                       "proposed_volatile",
                                       "Proposed (volatile)",
                                       config.record_events, ctx.faults);
                      }});
  }

  std::vector<ComparisonRow> flat(jobs.size());
  util::parallel_for(jobs.size(),
                     [&](std::size_t i) { flat[i] = jobs[i].run(); });

  std::vector<ResiliencePoint> points(config.intensities.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    points[i].intensity = config.intensities[i];
  for (std::size_t i = 0; i < jobs.size(); ++i)
    points[jobs[i].point].rows.push_back(std::move(flat[i]));
  return points;
}

}  // namespace solsched::core
