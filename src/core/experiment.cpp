#include "core/experiment.hpp"

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/asap.hpp"
#include "sched/duty_cycle.hpp"
#include "sched/edf.hpp"
#include "sched/intra_task.hpp"
#include "sched/lsa_inter.hpp"
#include "util/thread_pool.hpp"

namespace solsched::core {
namespace {

ComparisonRow run_one(const task::TaskGraph& graph,
                      const solar::SolarTrace& trace,
                      const nvp::NodeConfig& node, nvp::Scheduler& policy,
                      std::string name, bool record_events,
                      const fault::FaultInjector* faults = nullptr) {
  ComparisonRow row;
  row.algo = std::move(name);
  // Span names are dynamic (one per policy row), so the ScopedSpan is built
  // only when obs is on — the string allocation never hits the disabled path.
  std::optional<obs::ScopedSpan> span;
  if (obs::enabled()) span.emplace("experiment.row." + row.algo);
  if (record_events) row.events = std::make_shared<obs::SimTrace>();
  row.sim = nvp::simulate(graph, trace, policy, node, row.events.get(), faults);
  row.dmr = row.sim.overall_dmr();
  row.energy_utilization = row.sim.energy_utilization();
  row.migration_efficiency = row.sim.migration_efficiency();
  row.brownouts = row.sim.total_brownouts();
  OBS_COUNTER_ADD("experiment.rows", 1);
  return row;
}

/// The best *single* capacitor for the storage-oblivious baselines: the one
/// closest to the mean of the per-day sizing optima, or the largest when no
/// sizing data exists. Shared by run_comparison and run_resilience_sweep so
/// both put the baselines on identical hardware.
nvp::NodeConfig single_cap_baseline(const nvp::NodeConfig& effective,
                                    const TrainedController* trained) {
  nvp::NodeConfig baseline_node = effective;
  std::size_t single = 0;
  if (trained && !trained->sizing.daily_optimal_f.empty()) {
    double mean = 0.0;
    for (double c : trained->sizing.daily_optimal_f) mean += c;
    mean /= static_cast<double>(trained->sizing.daily_optimal_f.size());
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < baseline_node.capacities_f.size(); ++i) {
      const double d = std::fabs(baseline_node.capacities_f[i] - mean);
      if (d < best_d) {
        best_d = d;
        single = i;
      }
    }
  } else {
    for (std::size_t i = 1; i < baseline_node.capacities_f.size(); ++i)
      if (baseline_node.capacities_f[i] >
          baseline_node.capacities_f[single])
        single = i;
  }
  baseline_node.initial_cap = single;
  return baseline_node;
}

}  // namespace

std::vector<ComparisonRow> run_comparison(const task::TaskGraph& graph,
                                          const solar::SolarTrace& trace,
                                          const nvp::NodeConfig& node,
                                          const TrainedController* trained,
                                          const ComparisonConfig& config) {
  // All policies run on the same storage hardware: the sized bank when a
  // trained controller is supplied.
  const nvp::NodeConfig& effective = trained ? trained->node : node;

  // The single-storage baselines ([3], [9], ASAP, EDF) never re-select
  // capacitors: they assume one super capacitor fixed at design time. They
  // get the best *single* choice our sizing flow would make — the mean of
  // the per-day optima (the H = 1 cluster) — on the same physical bank.
  // Without sizing data they fall back to the largest capacitor.
  const nvp::NodeConfig baseline_node = single_cap_baseline(effective, trained);

  // Policy rows are independent simulations: collect one factory per
  // enabled row, run them on the thread pool into pre-sized slots, and
  // return in the declaration order — identical rows at any thread count.
  std::vector<std::function<ComparisonRow()>> row_jobs;
  if (config.run_asap)
    row_jobs.push_back([&] {
      sched::AsapScheduler policy;
      return run_one(graph, trace, baseline_node, policy, policy.name(),
                     config.record_events, config.faults);
    });
  if (config.run_edf)
    row_jobs.push_back([&] {
      sched::EdfScheduler policy;
      return run_one(graph, trace, baseline_node, policy, policy.name(),
                     config.record_events, config.faults);
    });
  if (config.run_duty)
    row_jobs.push_back([&] {
      sched::DutyCycleScheduler policy;
      return run_one(graph, trace, baseline_node, policy, policy.name(),
                     config.record_events, config.faults);
    });
  if (config.run_inter)
    row_jobs.push_back([&] {
      sched::LsaInterScheduler policy;
      return run_one(graph, trace, baseline_node, policy, policy.name(),
                     config.record_events, config.faults);
    });
  if (config.run_intra)
    row_jobs.push_back([&] {
      sched::IntraTaskScheduler policy;
      return run_one(graph, trace, baseline_node, policy, policy.name(),
                     config.record_events, config.faults);
    });
  if (config.run_proposed && trained)
    row_jobs.push_back([&] {
      auto policy = make_proposed(*trained);
      policy->attach_faults(config.faults);
      return run_one(graph, trace, effective, *policy, policy->name(),
                     config.record_events, config.faults);
    });
  if (config.run_optimal)
    row_jobs.push_back([&] {
      sched::OptimalConfig dp = config.dp;
      // Reuse the pipeline's period-option cache when available: the same
      // trace + node means this DP run hits on nearly every period.
      if (!dp.shared_cache && trained) dp.shared_cache = trained->option_cache;
      sched::OptimalScheduler policy(std::move(dp));
      return run_one(graph, trace, effective, policy, policy.name(),
                     config.record_events, config.faults);
    });

  std::vector<ComparisonRow> rows(row_jobs.size());
  util::parallel_for(row_jobs.size(),
                     [&](std::size_t i) { rows[i] = row_jobs[i](); });
  return rows;
}

const ComparisonRow& row_of(const std::vector<ComparisonRow>& rows,
                            const std::string& algo) {
  for (const auto& row : rows)
    if (row.algo == algo) return row;
  throw std::out_of_range("row_of: no such algorithm: " + algo);
}

std::vector<ResiliencePoint> run_resilience_sweep(
    const task::TaskGraph& graph, const solar::SolarTrace& trace,
    const nvp::NodeConfig& node, const TrainedController* trained,
    const ResilienceConfig& config) {
  const nvp::NodeConfig& effective = trained ? trained->node : node;
  const nvp::NodeConfig baseline_node = single_cap_baseline(effective, trained);
  nvp::NodeConfig volatile_node = effective;
  volatile_node.volatile_baseline = true;

  // One injector per intensity, built serially up front: construction
  // consumes all the plan's randomness, so the tables are fixed before any
  // row runs and can be shared read-only across the pool.
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  injectors.reserve(config.intensities.size());
  for (double intensity : config.intensities)
    injectors.push_back(std::make_unique<fault::FaultInjector>(
        config.plan.scaled(intensity), trace.grid()));

  // Flatten (intensity x policy) into one job list so the pool sees every
  // simulation at once (nested parallel regions would serialize).
  struct Job {
    std::size_t point;
    std::function<ComparisonRow()> run;
  };
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < config.intensities.size(); ++i) {
    const fault::FaultInjector* fx = injectors[i].get();
    if (config.run_inter)
      jobs.push_back({i, [&, fx] {
                        sched::LsaInterScheduler policy;
                        return run_one(graph, trace, baseline_node, policy,
                                       policy.name(),
                                       config.record_events, fx);
                      }});
    if (config.run_intra)
      jobs.push_back({i, [&, fx] {
                        sched::IntraTaskScheduler policy;
                        return run_one(graph, trace, baseline_node, policy,
                                       policy.name(),
                                       config.record_events, fx);
                      }});
    if (config.run_proposed && trained) {
      jobs.push_back({i, [&, fx] {
                        auto policy = make_proposed(*trained);
                        policy->attach_faults(fx);
                        return run_one(graph, trace, effective, *policy,
                                       policy->name(),
                                       config.record_events, fx);
                      }});
      if (config.volatile_ablation)
        jobs.push_back({i, [&, fx] {
                          auto policy = make_proposed(*trained);
                          policy->attach_faults(fx);
                          return run_one(graph, trace, volatile_node, *policy,
                                         "Proposed (volatile)",
                                         config.record_events, fx);
                        }});
    }
  }

  std::vector<ComparisonRow> flat(jobs.size());
  util::parallel_for(jobs.size(),
                     [&](std::size_t i) { flat[i] = jobs[i].run(); });

  std::vector<ResiliencePoint> points(config.intensities.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    points[i].intensity = config.intensities[i];
  for (std::size_t i = 0; i < jobs.size(); ++i)
    points[jobs[i].point].rows.push_back(std::move(flat[i]));
  return points;
}

}  // namespace solsched::core
