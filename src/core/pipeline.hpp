// Offline pipeline (paper Fig. 4, left column).
//
// 1. Super-capacitor sizing on the training trace (Sec. 4.1).
// 2. Long-term DMR optimization by the DP oracle (Sec. 4.2); while the
//    oracle executes on the training trace, every period's *observable*
//    inputs (previous period solar, capacitor voltages, accumulated DMR) are
//    recorded together with the oracle's decisions (capacitor, α, te) as
//    labelled samples; all evaluated options populate the Eq. 13 LUT.
// 3. DBN training: greedy RBM pretraining + supervised fine-tuning.
//
// The result is a TrainedController from which the online ProposedScheduler
// is built.
#pragma once

#include <memory>

#include "ann/dbn.hpp"
#include "nvp/node_config.hpp"
#include "sched/lut.hpp"
#include "sched/optimal.hpp"
#include "sched/proposed.hpp"
#include "sizing/cap_sizing.hpp"

namespace solsched::core {

/// Knobs of the whole offline flow.
struct PipelineConfig {
  /// The oracle's DP config with start-voltage quantization enabled: inside
  /// the pipeline the DP is a training-label generator, so the sub-bucket
  /// plan perturbation is within training noise and buys cross-cell
  /// period-option cache hits (see PeriodOptionCache).
  static sched::OptimalConfig default_dp() {
    sched::OptimalConfig dp;
    dp.v0_quant_steps = 16;
    return dp;
  }

  std::size_t n_caps = 4;  ///< H: number of distributed capacitors to size.
  bool run_sizing = true;  ///< false = keep the node config's capacities.
  sizing::SizingConfig sizing{};
  sched::OptimalConfig dp = default_dp();
  ann::DbnConfig dbn{};
  sched::ProposedConfig online{};
};

/// Everything the online side needs, plus offline diagnostics.
struct TrainedController {
  nvp::NodeConfig node;          ///< Node with the sized capacitor bank.
  sched::ProposedModel model;    ///< DBN + normalizer for the online policy.
  sched::Lut lut;                ///< Eq. 13 table from the DP's options.
  sizing::SizingResult sizing;   ///< Daily optima and clusters.
  std::size_t n_samples = 0;     ///< Training samples recorded.
  double train_mse = 0.0;        ///< Final fine-tune loss.
  double oracle_dmr = 0.0;       ///< DMR the oracle achieved on the
                                 ///< training trace (sanity reference).
  sched::ProposedConfig online;  ///< Thresholds for the online policy.
  /// Period-option cache populated by the oracle run. Later Optimal runs on
  /// the same trace/node (e.g. the comparison's Optimal row) reuse it and
  /// hit on nearly every period.
  std::shared_ptr<sched::PeriodOptionCache> option_cache;
  sched::OptionCacheStats dp_cache_stats;  ///< Counters after the oracle run.
};

/// Runs the full offline flow. `base` supplies physics and grid; its
/// capacitor list is replaced by sizing unless config.run_sizing is false.
TrainedController train_pipeline(const task::TaskGraph& graph,
                                 const solar::SolarTrace& training_trace,
                                 const nvp::NodeConfig& base,
                                 const PipelineConfig& config = {});

/// Builds the online scheduler from a trained controller.
std::unique_ptr<sched::ProposedScheduler> make_proposed(
    const TrainedController& controller);

}  // namespace solsched::core
