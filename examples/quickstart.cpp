// Quickstart: the whole library in ~60 lines.
//
// 1. Generate a solar trace for the paper's panel.
// 2. Pick a benchmark task set.
// 3. Train the offline pipeline (capacitor sizing -> DP oracle -> DBN).
// 4. Run the online proposed scheduler and a baseline; compare DMR.
//
// Build & run:  ./build/examples/quickstart [--train-days N] [--seed S]
//                                            [--benchmark wam|ecg|shm]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"
#include "util/cli.hpp"

using namespace solsched;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("train-days", "12", "days of training climate");
  cli.add_flag("seed", "1", "training climate seed");
  cli.add_flag("benchmark", "ecg", "workload: wam, ecg or shm");
  if (!cli.parse(argc, argv)) {
    std::printf("%s\n%s", cli.error().c_str(),
                cli.usage("quickstart").c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("quickstart").c_str());
    return 0;
  }

  // --- 1. Solar environment -------------------------------------------
  const solar::TimeGrid grid = solar::default_grid();  // 144 x 20 x 30 s.
  solar::TraceGeneratorConfig trace_config;
  trace_config.seed = cli.get_seed("seed");
  const solar::TraceGenerator generator(trace_config);
  const solar::SolarTrace training = generator.generate_days(
      static_cast<std::size_t>(cli.get_int("train-days")), grid,
      solar::DayKind::kPartlyCloudy);
  solar::TraceGeneratorConfig test_config;
  test_config.seed = 9;
  const solar::SolarTrace test_days =
      solar::TraceGenerator(test_config)
          .generate_days(3, grid, solar::DayKind::kOvercast);
  std::printf("training trace: %zu days, %.0f J harvested\n",
              training.grid().n_days, training.total_energy_j());

  // --- 2. Workload ------------------------------------------------------
  const std::string which = cli.get("benchmark");
  const task::TaskGraph graph = which == "wam"   ? task::wam_benchmark()
                                : which == "shm" ? task::shm_benchmark()
                                                 : task::ecg_benchmark();
  std::printf("benchmark: %s, %zu tasks on %zu NVPs, %.1f J per period\n",
              graph.name().c_str(), graph.size(), graph.nvp_count(),
              graph.total_energy_j());

  // --- 3. Offline pipeline ----------------------------------------------
  nvp::NodeConfig node;
  node.grid = grid;
  core::PipelineConfig pipeline;
  pipeline.n_caps = 4;  // H distributed super capacitors.
  const core::TrainedController controller =
      core::train_pipeline(graph, training, node, pipeline);
  std::printf("sized capacitors:");
  for (double c : controller.node.capacities_f) std::printf(" %.1f F", c);
  std::printf("\noracle DMR on training trace: %.1f%%\n",
              100.0 * controller.oracle_dmr);

  // --- 4. Online comparison ---------------------------------------------
  const auto rows =
      core::run_comparison(graph, test_days, node, &controller, {});
  std::printf("\n%-12s %8s %12s\n", "algorithm", "DMR", "energy util");
  for (const auto& row : rows)
    std::printf("%-12s %7.1f%% %11.1f%%\n", row.algo.c_str(), 100.0 * row.dmr,
                100.0 * row.energy_utilization);

  const double proposed = core::row_of(rows, "proposed").dmr;
  const double baseline = core::row_of(rows, "inter").dmr;
  std::printf("\nproposed vs WCMA-LSA baseline: %.1f%% -> %.1f%% DMR\n",
              100.0 * baseline, 100.0 * proposed);
  return 0;
}
