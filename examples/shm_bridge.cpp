// Structural-health-monitoring node: storage design study.
//
// An SHM node on a bridge pylon must survive long overcast stretches. This
// example uses the sizing module directly: it extracts the daily migration
// patterns of the SHM workload over a month, shows how the optimal
// capacitor varies with the weather, sweeps the number of distributed
// capacitors, and demonstrates loading a measured trace from CSV.
//
// Build & run:  ./build/examples/shm_bridge
#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "solar/csv_trace.hpp"
#include "solar/trace_generator.hpp"
#include "sizing/cap_sizing.hpp"
#include "task/benchmarks.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace solsched;

int main() {
  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::shm_benchmark();

  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 5;
  const solar::TraceGenerator generator(gen_config);
  const auto month =
      generator.generate_days(28, grid, solar::DayKind::kPartlyCloudy);
  const auto kinds =
      generator.weather_sequence(28, solar::DayKind::kPartlyCloudy);

  // --- Daily optimal capacities vs. weather ------------------------------
  const sizing::SizingConfig sizing_config;
  const sizing::SizingResult sized =
      sizing::size_capacitors(graph, month, 4, sizing_config);

  std::printf("daily optimal capacitor vs. weather (first 14 days):\n");
  util::TextTable daily;
  daily.set_header({"day", "weather", "harvest (J)", "C_opt (F)",
                    "loss at opt (J)"});
  for (std::size_t d = 0; d < 14; ++d)
    daily.add_row({std::to_string(d + 1), solar::to_string(kinds[d]),
                   util::fmt(month.day_energy_j(d), 0),
                   util::fmt(sized.daily_optimal_f[d], 1),
                   util::fmt(sized.daily_loss_j[d], 0)});
  std::printf("%s", daily.str().c_str());

  std::printf("\nclustered bank (H=4):");
  for (double c : sized.capacities_f) std::printf(" %.1fF", c);
  std::printf("\ndaily optima: mean %.1fF, spread %.1f-%.1fF\n",
              util::mean(sized.daily_optimal_f),
              util::min_of(sized.daily_optimal_f),
              util::max_of(sized.daily_optimal_f));

  // --- How many capacitors does this deployment need? --------------------
  std::printf("\nbank granularity sweep (clustering inertia = how far the "
              "bank sits from the daily optima):\n");
  util::TextTable sweep;
  sweep.set_header({"H", "capacities (F)", "inertia (F^2)"});
  for (std::size_t h = 1; h <= 6; ++h) {
    const auto s = sizing::size_capacitors(graph, month, h, sizing_config);
    std::string caps;
    for (double c : s.capacities_f) {
      if (!caps.empty()) caps += "/";
      caps += util::fmt(c, 1);
    }
    double inertia = 0.0;
    for (std::size_t d = 0; d < s.daily_optimal_f.size(); ++d) {
      const double diff =
          s.daily_optimal_f[d] - s.capacities_f[s.day_labels[d]];
      inertia += diff * diff;
    }
    sweep.add_row({std::to_string(h), caps, util::fmt(inertia, 1)});
  }
  std::printf("%s", sweep.str().c_str());

  // --- Loading a measured trace from CSV ---------------------------------
  // Synthesize a "measured" CSV (hourly irradiance of one day) and run the
  // comparison on it — the path a user with real MIDC exports would take.
  std::ostringstream csv;
  csv << "hour,ghi_w_m2\n";
  const double hourly[24] = {0,   0,   0,   0,   0,   30,  150, 320,
                             520, 690, 820, 900, 880, 790, 640, 450,
                             260, 90,  10,  0,   0,   0,   0,   0};
  for (int h = 0; h < 24; ++h) csv << h << "," << hourly[h] << "\n";

  const auto measured_day = solar::trace_from_irradiance_csv(
      csv.str(), grid, solar::SolarPanel::paper_panel(), 1);
  std::printf("\nCSV-loaded day: %.0f J harvested, peak %.1f mW\n",
              measured_day.total_energy_j(),
              1000.0 * measured_day.peak_power_w());

  nvp::NodeConfig node;
  node.grid = grid;
  const core::TrainedController controller =
      core::train_pipeline(graph, month, node, core::PipelineConfig{});
  const auto rows =
      core::run_comparison(graph, measured_day, node, &controller, {});
  std::printf("\nDMR on the measured day:\n");
  for (const auto& row : rows)
    std::printf("  %-12s %5.1f%%\n", row.algo.c_str(), 100.0 * row.dmr);
  return 0;
}
