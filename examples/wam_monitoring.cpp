// Wild-animal-monitoring deployment walkthrough.
//
// The paper's motivating WAM collar: eight tasks (locating, heart rate,
// voice pipeline, emergency response, transmission) on four NVPs. This
// example runs the full offline-online flow on a week of mixed weather,
// prints a per-day report, saves the trained controller to disk, reloads
// it, and renders an execution Gantt chart of a dawn period so you can see
// the load matching at work.
//
// The per-day deadline figures come from the structured simulation event
// trace (obs::SimTrace) rather than hand-aggregated SimResult fields: the
// week run attaches a trace, and the day table below is grouped from its
// per-period "deadline" events.
//
// Build & run:  ./build/examples/wam_monitoring
//   --metrics-out m.json   dump the metrics registry snapshot
//   --trace-out t.json     dump Chrome trace_event JSON (chrome://tracing)
//   --events-out e.jsonl   dump the week run's simulation events (JSONL)
//   --manifest-out m.json  write the run manifest (config digest, seeds,
//                          build provenance; inspect with solsched-inspect)
//   --fault-plan SPEC      inject faults into the week run, e.g.
//                          "blackout=2,dropout=0.05,corrupt=0.1" (see
//                          fault::FaultPlan::parse for the key list)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/controller_io.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "core/report.hpp"
#include "nvp/exec_trace.hpp"
#include "nvp/node_sim.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/ledger.hpp"
#include "obs/analysis/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_trace.hpp"
#include "obs/span.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"
#include "util/cli.hpp"

using namespace solsched;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("metrics-out", "", "write a metrics registry snapshot (JSON)");
  cli.add_flag("trace-out", "",
               "write Chrome trace_event JSON for chrome://tracing");
  cli.add_flag("events-out", "",
               "write the week run's simulation events (JSONL)");
  cli.add_flag("manifest-out", "",
               "write the run manifest (JSON; see solsched-inspect diff)");
  cli.add_flag("fault-plan", "",
               "fault spec for the week run, e.g. blackout=2,dropout=0.05");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("wam_monitoring").c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("wam_monitoring").c_str());
    return 0;
  }
  if (!cli.get("metrics-out").empty() || !cli.get("trace-out").empty())
    obs::set_enabled(true);
  if (!cli.get("trace-out").empty()) obs::set_trace_events_enabled(true);

  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::wam_benchmark();

  std::printf("WAM collar: %zu tasks / %zu NVPs\n", graph.size(),
              graph.nvp_count());
  for (const auto& t : graph.tasks())
    std::printf("  %-12s exec %3.0fs  deadline %3.0fs  %4.1f mW on NVP%zu\n",
                t.name.c_str(), t.exec_s, t.deadline_s, 1000.0 * t.power_w,
                t.nvp);

  // --- Offline: train on two weeks of seeded climate --------------------
  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 77;
  const solar::TraceGenerator generator(gen_config);
  const auto training =
      generator.generate_days(14, grid, solar::DayKind::kPartlyCloudy);

  nvp::NodeConfig node;
  node.grid = grid;
  const core::TrainedController controller =
      core::train_pipeline(graph, training, node, core::PipelineConfig{});
  std::printf("\nsized bank:");
  for (double c : controller.node.capacities_f) std::printf(" %.1fF", c);
  std::printf("  (daily optima spanned %.1f-%.1fF)\n",
              *std::min_element(controller.sizing.daily_optimal_f.begin(),
                                controller.sizing.daily_optimal_f.end()),
              *std::max_element(controller.sizing.daily_optimal_f.begin(),
                                controller.sizing.daily_optimal_f.end()));

  // --- Ship the controller: save, reload, verify -------------------------
  const std::string path = "/tmp/wam_controller.txt";
  if (core::save_controller(controller, path)) {
    const core::TrainedController reloaded = core::load_controller(path);
    std::printf("controller saved to %s and reloaded (%zu caps, %zu-input "
                "DBN)\n",
                path.c_str(), reloaded.node.capacities_f.size(),
                reloaded.model.dbn->n_inputs());
  }

  // --- Online: one week of unseen weather -------------------------------
  solar::TraceGeneratorConfig test_config;
  test_config.seed = 4242;
  const std::size_t n_days = 7;
  const auto week = solar::TraceGenerator(test_config)
                        .generate_days(n_days, grid, solar::DayKind::kClear);

  // Optional fault injection over the whole week (DESIGN.md §11).
  std::unique_ptr<fault::FaultInjector> faults;
  if (!cli.get("fault-plan").empty()) {
    fault::FaultPlan plan;
    try {
      plan = fault::FaultPlan::parse(cli.get("fault-plan"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--fault-plan: %s\n", e.what());
      return 1;
    }
    faults = std::make_unique<fault::FaultInjector>(plan, week.grid());
    std::printf("\nfault plan: %s\n", plan.describe().c_str());
  }

  auto policy = core::make_proposed(controller);
  policy->attach_faults(faults.get());
  nvp::RecordingScheduler recorder(*policy);
  obs::SimTrace events;
  const nvp::SimResult result = nvp::simulate(
      graph, week, recorder, controller.node, &events, faults.get());

  std::printf("\n%s", core::summarize(result, "one-week run", 1).c_str());
  if (faults)
    std::printf("  faults: %zu outages over %zu dark slots, %zu backups, "
                "%zu restores, %zu degraded periods\n",
                result.total_power_failures(),
                result.total_power_failure_slots(), result.total_backups(),
                result.total_restores(), result.total_fallbacks());

  // Per-day deadline figures, grouped from the event trace.
  std::vector<double> day_dmr(n_days, 0.0);
  std::vector<std::size_t> day_periods(n_days, 0);
  std::vector<std::size_t> day_misses(n_days, 0);
  for (const auto& e : events.events()) {
    if (e.type != "deadline" || e.day >= n_days) continue;
    day_dmr[e.day] += e.field_or("dmr");
    day_misses[e.day] += static_cast<std::size_t>(e.field_or("misses"));
    ++day_periods[e.day];
  }
  std::printf("  per-day DMR (from event trace):");
  for (std::size_t d = 0; d < n_days; ++d)
    std::printf(" %.1f%%",
                day_periods[d]
                    ? 100.0 * day_dmr[d] / static_cast<double>(day_periods[d])
                    : 0.0);
  std::printf("\n  per-day misses:");
  for (std::size_t d = 0; d < n_days; ++d)
    std::printf(" %zu", day_misses[d]);
  std::printf("  (capacitor switches: %zu)\n", events.count("cap_switch"));

  // --- Gantt of the dawn of day 2 (period 40 = 06:40) -------------------
  const std::size_t period = 1 * grid.n_periods + 40;
  std::printf("\nexecution Gantt, day 2 06:40-07:00 (2 periods of 20 slots):"
              "\n%s",
              nvp::render_gantt(graph, recorder.slots(),
                                period * grid.n_slots,
                                (period + 2) * grid.n_slots, grid.n_slots)
                  .c_str());

  // --- Dump the per-period series for plotting ---------------------------
  if (core::write_text_file("/tmp/wam_week.csv", core::to_csv(result)))
    std::printf("\nper-period series written to /tmp/wam_week.csv\n");

  const std::string events_out = cli.get("events-out");
  if (!events_out.empty() &&
      core::write_text_file(events_out, events.to_jsonl()))
    std::printf("week event trace written to %s\n", events_out.c_str());

  // Exit receipt when any trace output was requested: conservation audit +
  // deadline-miss attribution, one line each (DESIGN.md §12).
  if (!events_out.empty() || !cli.get("trace-out").empty()) {
    const obs::analysis::EnergyLedger ledger =
        obs::analysis::build_ledger(events.events());
    std::printf("%s\n",
                obs::analysis::audit_conservation(ledger).message.c_str());
    std::printf("miss attribution: %s\n",
                obs::analysis::attribute_misses(events.events())
                    .one_line()
                    .c_str());
  }

  const std::string manifest_out = cli.get("manifest-out");
  if (!manifest_out.empty()) {
    obs::analysis::ManifestInfo info;
    info.workload = "wam_monitoring";
    info.seeds = {gen_config.seed, test_config.seed};
    info.node = &controller.node;
    info.trace_path = events_out;
    info.include_metrics = obs::enabled();
    obs::analysis::write_manifest(manifest_out, info);
    std::printf("run manifest written to %s\n", manifest_out.c_str());
  }

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty() &&
      core::write_text_file(
          metrics_out, obs::MetricsRegistry::global().snapshot().to_json()))
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  const std::string trace_out = cli.get("trace-out");
  if (!trace_out.empty() && obs::write_chrome_trace(trace_out))
    std::printf("Chrome trace written to %s (open in chrome://tracing)\n",
                trace_out.c_str());
  return 0;
}
