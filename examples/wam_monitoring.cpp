// Wild-animal-monitoring deployment walkthrough.
//
// The paper's motivating WAM collar: eight tasks (locating, heart rate,
// voice pipeline, emergency response, transmission) on four NVPs. This
// example runs the full offline-online flow on a week of mixed weather,
// prints a per-day report, saves the trained controller to disk, reloads
// it, and renders an execution Gantt chart of a dawn period so you can see
// the load matching at work.
//
// Build & run:  ./build/examples/wam_monitoring
#include <algorithm>
#include <cstdio>

#include "core/controller_io.hpp"
#include "core/report.hpp"
#include "nvp/exec_trace.hpp"
#include "nvp/node_sim.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"

using namespace solsched;

int main() {
  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::wam_benchmark();

  std::printf("WAM collar: %zu tasks / %zu NVPs\n", graph.size(),
              graph.nvp_count());
  for (const auto& t : graph.tasks())
    std::printf("  %-12s exec %3.0fs  deadline %3.0fs  %4.1f mW on NVP%zu\n",
                t.name.c_str(), t.exec_s, t.deadline_s, 1000.0 * t.power_w,
                t.nvp);

  // --- Offline: train on two weeks of seeded climate --------------------
  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 77;
  const solar::TraceGenerator generator(gen_config);
  const auto training =
      generator.generate_days(14, grid, solar::DayKind::kPartlyCloudy);

  nvp::NodeConfig node;
  node.grid = grid;
  const core::TrainedController controller =
      core::train_pipeline(graph, training, node, core::PipelineConfig{});
  std::printf("\nsized bank:");
  for (double c : controller.node.capacities_f) std::printf(" %.1fF", c);
  std::printf("  (daily optima spanned %.1f-%.1fF)\n",
              *std::min_element(controller.sizing.daily_optimal_f.begin(),
                                controller.sizing.daily_optimal_f.end()),
              *std::max_element(controller.sizing.daily_optimal_f.begin(),
                                controller.sizing.daily_optimal_f.end()));

  // --- Ship the controller: save, reload, verify -------------------------
  const std::string path = "/tmp/wam_controller.txt";
  if (core::save_controller(controller, path)) {
    const core::TrainedController reloaded = core::load_controller(path);
    std::printf("controller saved to %s and reloaded (%zu caps, %zu-input "
                "DBN)\n",
                path.c_str(), reloaded.node.capacities_f.size(),
                reloaded.model.dbn->n_inputs());
  }

  // --- Online: one week of unseen weather -------------------------------
  solar::TraceGeneratorConfig test_config;
  test_config.seed = 4242;
  const auto week = solar::TraceGenerator(test_config)
                        .generate_days(7, grid, solar::DayKind::kClear);

  auto policy = core::make_proposed(controller);
  nvp::RecordingScheduler recorder(*policy);
  const nvp::SimResult result =
      nvp::simulate(graph, week, recorder, controller.node);

  std::printf("\n%s", core::summarize(result, "one-week run", 7).c_str());

  // --- Gantt of the dawn of day 2 (period 40 = 06:40) -------------------
  const std::size_t period = 1 * grid.n_periods + 40;
  std::printf("\nexecution Gantt, day 2 06:40-07:00 (2 periods of 20 slots):"
              "\n%s",
              nvp::render_gantt(graph, recorder.slots(),
                                period * grid.n_slots,
                                (period + 2) * grid.n_slots, grid.n_slots)
                  .c_str());

  // --- Dump the per-period series for plotting ---------------------------
  if (core::write_text_file("/tmp/wam_week.csv", core::to_csv(result)))
    std::printf("\nper-period series written to /tmp/wam_week.csv\n");
  return 0;
}
