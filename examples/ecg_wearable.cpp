// ECG wearable what-if study.
//
// A designer sizing a solar ECG patch wants to know: how does deadline
// miss rate trade against panel area, and what does the WCMA forecast
// error look like on this climate? This example sweeps the panel scale
// (0.5x .. 2x the paper's 15.75 cm^2 panel), evaluates predictors, and
// compares the proposed scheduler against the baselines at each size.
//
// Build & run:  ./build/examples/ecg_wearable
#include <cstdio>

#include "core/experiment.hpp"
#include "solar/predictor.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace solsched;

int main() {
  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::ecg_benchmark();
  std::printf("ECG patch: %zu tasks, %.1f J per 10-minute period, %.0f J "
              "per day\n",
              graph.size(), graph.total_energy_j(),
              graph.total_energy_j() * static_cast<double>(grid.n_periods));

  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 11;
  const solar::TraceGenerator generator(gen_config);
  const auto base_training =
      generator.generate_days(10, grid, solar::DayKind::kPartlyCloudy);
  const auto base_test =
      generator.generate_days(3, grid, solar::DayKind::kOvercast);

  // --- Predictor quality on this climate --------------------------------
  {
    solar::WcmaPredictor wcma(grid.slots_per_day());
    solar::EwmaPredictor ewma(grid.slots_per_day());
    util::TextTable table;
    table.set_header({"horizon", "WCMA MAE (mW)", "EWMA MAE (mW)"});
    for (std::size_t h : {1u, 10u, 20u, 60u}) {
      table.add_row({std::to_string(h) + " slots",
                     util::fmt(util::w_to_mw(solar::evaluate_predictor_mae(
                                   wcma, base_training, h)),
                               2),
                     util::fmt(util::w_to_mw(solar::evaluate_predictor_mae(
                                   ewma, base_training, h)),
                               2)});
    }
    std::printf("\nforecast error on the training climate:\n%s",
                table.str().c_str());
  }

  // --- Panel size sweep ---------------------------------------------------
  std::printf("\npanel scale sweep (3 overcast days, DMR per policy):\n");
  util::TextTable table;
  table.set_header({"panel scale", "harvest (J/day)", "Inter-task",
                    "Proposed", "Optimal"});
  for (double scale : {0.5, 1.0, 1.5, 2.0}) {
    const auto training = base_training.scaled(scale);
    const auto test = base_test.scaled(scale);

    nvp::NodeConfig node;
    node.grid = grid;
    const core::TrainedController controller =
        core::train_pipeline(graph, training, node, core::PipelineConfig{});
    core::ComparisonConfig config;
    config.run_intra = false;
    const auto rows =
        core::run_comparison(graph, test, node, &controller, config);
    table.add_row({util::fmt(scale, 2) + "x",
                   util::fmt(test.total_energy_j() / 3.0, 0),
                   util::fmt_pct(core::row_of(rows, "Inter-task").dmr),
                   util::fmt_pct(core::row_of(rows, "Proposed").dmr),
                   util::fmt_pct(core::row_of(rows, "Optimal").dmr)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nreading: the scheduler buys a chunk of the DMR a bigger "
              "panel would — compare the Proposed column against the "
              "Inter-task one a row lower\n");
  return 0;
}
