// ECG wearable what-if study.
//
// A designer sizing a solar ECG patch wants to know: how does deadline
// miss rate trade against panel area, and what does the WCMA forecast
// error look like on this climate? This example sweeps the panel scale
// (0.5x .. 2x the paper's 15.75 cm^2 panel), evaluates predictors, and
// compares the proposed scheduler against the baselines at each size.
//
// Build & run:  ./build/examples/ecg_wearable
//   --events-out e.jsonl  dump the nominal (1.0x) Proposed run's simulation
//                         events and print its energy-ledger audit and
//                         deadline-miss attribution at exit
//   --manifest-out m.json write the run manifest (config digest, seeds,
//                         build provenance; inspect with solsched-inspect)
//   --fault-plan SPEC     also run a resilience sweep at the 1.0x panel,
//                         e.g. "blackout=3,dropout=0.05,corrupt=0.1"
#include <cstdio>
#include <memory>
#include <optional>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/analysis/attribution.hpp"
#include "obs/analysis/ledger.hpp"
#include "obs/analysis/manifest.hpp"
#include "solar/predictor.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace solsched;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("events-out", "",
               "write the 1.0x Proposed run's simulation events (JSONL)");
  cli.add_flag("manifest-out", "",
               "write the run manifest (JSON; see solsched-inspect diff)");
  cli.add_flag("fault-plan", "",
               "resilience sweep spec, e.g. blackout=3,corrupt=0.1");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("ecg_wearable").c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("ecg_wearable").c_str());
    return 0;
  }
  std::optional<fault::FaultPlan> fault_plan;
  if (!cli.get("fault-plan").empty()) {
    try {
      fault_plan = fault::FaultPlan::parse(cli.get("fault-plan"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--fault-plan: %s\n", e.what());
      return 1;
    }
  }

  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::ecg_benchmark();
  std::printf("ECG patch: %zu tasks, %.1f J per 10-minute period, %.0f J "
              "per day\n",
              graph.size(), graph.total_energy_j(),
              graph.total_energy_j() * static_cast<double>(grid.n_periods));

  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 11;
  const solar::TraceGenerator generator(gen_config);
  const auto base_training =
      generator.generate_days(10, grid, solar::DayKind::kPartlyCloudy);
  const auto base_test =
      generator.generate_days(3, grid, solar::DayKind::kOvercast);

  // --- Predictor quality on this climate --------------------------------
  {
    solar::WcmaPredictor wcma(grid.slots_per_day());
    solar::EwmaPredictor ewma(grid.slots_per_day());
    util::TextTable table;
    table.set_header({"horizon", "WCMA MAE (mW)", "EWMA MAE (mW)"});
    for (std::size_t h : {1u, 10u, 20u, 60u}) {
      table.add_row({std::to_string(h) + " slots",
                     util::fmt(util::w_to_mw(solar::evaluate_predictor_mae(
                                   wcma, base_training, h)),
                               2),
                     util::fmt(util::w_to_mw(solar::evaluate_predictor_mae(
                                   ewma, base_training, h)),
                               2)});
    }
    std::printf("\nforecast error on the training climate:\n%s",
                table.str().c_str());
  }

  // --- Panel size sweep ---------------------------------------------------
  std::printf("\npanel scale sweep (3 overcast days, DMR per policy):\n");
  util::TextTable table;
  table.set_header({"panel scale", "harvest (J/day)", "Inter-task",
                    "Proposed", "Optimal"});
  const std::string events_out = cli.get("events-out");
  std::optional<core::TrainedController> nominal;  // 1.0x, for the sweep.
  std::shared_ptr<obs::SimTrace> nominal_events;   // 1.0x Proposed trace.
  for (double scale : {0.5, 1.0, 1.5, 2.0}) {
    const auto training = base_training.scaled(scale);
    const auto test = base_test.scaled(scale);

    nvp::NodeConfig node;
    node.grid = grid;
    const core::TrainedController controller =
        core::train_pipeline(graph, training, node, core::PipelineConfig{});
    if (scale == 1.0) nominal = controller;
    core::ComparisonConfig config;
    config.scheduler_ids = {"inter", "proposed", "optimal"};
    config.record_events = !events_out.empty() && scale == 1.0;
    const auto rows =
        core::run_comparison(graph, test, node, &controller, config);
    if (config.record_events)
      nominal_events = core::row_of(rows, "proposed").events;
    table.add_row({util::fmt(scale, 2) + "x",
                   util::fmt(test.total_energy_j() / 3.0, 0),
                   util::fmt_pct(core::row_of(rows, "inter").dmr),
                   util::fmt_pct(core::row_of(rows, "proposed").dmr),
                   util::fmt_pct(core::row_of(rows, "optimal").dmr)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nreading: the scheduler buys a chunk of the DMR a bigger "
              "panel would — compare the Proposed column against the "
              "Inter-task one a row lower\n");

  // --- Optional resilience sweep at the nominal panel (DESIGN.md §11) ----
  if (fault_plan && nominal) {
    std::printf("\nresilience sweep at 1.0x panel (%s):\n",
                fault_plan->describe().c_str());
    core::ResilienceConfig config;
    config.plan = *fault_plan;
    config.record_events = true;  // Feeds the miss-causes column.
    const auto points = core::run_resilience_sweep(
        graph, base_test, nominal->node, &*nominal, config);
    std::printf("%s", core::resilience_table(points).c_str());
    std::printf("\nreading: the volatile row shows what the NVP's "
                "backup/restore buys once outages start wiping progress\n");
  }

  // --- Exit receipt: trace dump, ledger audit, manifest ------------------
  if (nominal_events) {
    if (core::write_text_file(events_out, nominal_events->to_jsonl()))
      std::printf("\nnominal event trace written to %s\n", events_out.c_str());
    const obs::analysis::EnergyLedger ledger =
        obs::analysis::build_ledger(nominal_events->events());
    std::printf("%s\n",
                obs::analysis::audit_conservation(ledger).message.c_str());
    std::printf("miss attribution: %s\n",
                obs::analysis::attribute_misses(nominal_events->events())
                    .one_line()
                    .c_str());
  }
  const std::string manifest_out = cli.get("manifest-out");
  if (!manifest_out.empty() && nominal) {
    obs::analysis::ManifestInfo info;
    info.workload = "ecg_wearable";
    info.seeds = {gen_config.seed};
    info.node = &nominal->node;
    info.trace_path = events_out;
    obs::analysis::write_manifest(manifest_out, info);
    std::printf("run manifest written to %s\n", manifest_out.c_str());
  }
  return 0;
}
