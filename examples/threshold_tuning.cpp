// Tuning the online thresholds (E_th and δ, Sec. 5.2).
//
// The paper notes the DMR depends on "the thresholds in the selection
// method"; this tool sweeps both on a validation trace and prints the DMR
// surface, plus a LUT-online vs. DBN-online comparison — everything a user
// needs to pick deployment values.
//
// Build & run:  ./build/examples/threshold_tuning
#include <cstdio>
#include <memory>

#include "core/pipeline.hpp"
#include "nvp/node_sim.hpp"
#include "sched/lut_scheduler.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"
#include "util/table.hpp"

using namespace solsched;

int main() {
  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::wam_benchmark();

  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 2016;
  const solar::TraceGenerator generator(gen_config);
  const auto training =
      generator.generate_days(10, grid, solar::DayKind::kPartlyCloudy);
  const auto validation =
      generator.generate_days(5, grid, solar::DayKind::kOvercast);

  nvp::NodeConfig node;
  node.grid = grid;
  const core::TrainedController controller =
      core::train_pipeline(graph, training, node, core::PipelineConfig{});

  // --- E_th x delta sweep -------------------------------------------------
  std::printf("validation DMR over (E_th, delta):\n");
  util::TextTable table;
  table.set_header({"E_th \\ delta", "0.1", "0.3", "0.5", "1.0"});
  for (double e_th : {2.0, 10.0, 20.0, 40.0}) {
    std::vector<std::string> row{util::fmt(e_th, 0) + " J"};
    for (double delta : {0.1, 0.3, 0.5, 1.0}) {
      sched::ProposedConfig config = controller.online;
      config.e_th_j = e_th;
      config.delta = delta;
      sched::ProposedScheduler policy(controller.model, config);
      const auto result =
          nvp::simulate(graph, validation, policy, controller.node);
      row.push_back(util::fmt_pct(result.overall_dmr()));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.str().c_str());

  // --- DBN online vs. raw LUT online --------------------------------------
  {
    auto dbn_policy = core::make_proposed(controller);
    const double dbn_dmr =
        nvp::simulate(graph, validation, *dbn_policy, controller.node)
            .overall_dmr();

    auto lut = std::make_shared<sched::Lut>(controller.lut);
    sched::LutScheduler lut_policy(lut, controller.node.capacities_f,
                                   graph.size(), controller.online);
    const double lut_dmr =
        nvp::simulate(graph, validation, lut_policy, controller.node)
            .overall_dmr();
    std::printf("\nonline policy head-to-head: DBN %.1f%% vs raw LUT "
                "nearest-neighbour %.1f%% (LUT has %zu entries; the DBN "
                "compresses and generalizes them)\n",
                100.0 * dbn_dmr, 100.0 * lut_dmr, controller.lut.size());
  }
  return 0;
}
