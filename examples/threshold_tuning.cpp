// Tuning the online thresholds (E_th and δ, Sec. 5.2).
//
// The paper notes the DMR depends on "the thresholds in the selection
// method"; this tool sweeps both on a validation trace and prints the DMR
// surface, plus a LUT-online vs. DBN-online comparison — everything a user
// needs to pick deployment values.
//
// Every simulated point is scored from its structured event trace (the
// per-period "deadline" events emitted by nvp::simulate), not from
// hand-aggregated SimResult fields — the trace is the single source of
// truth for deadline accounting.
//
// Build & run:  ./build/examples/threshold_tuning
//   --metrics-out m.json   dump the metrics registry snapshot
//   --trace-out t.json     dump Chrome trace_event JSON (chrome://tracing)
//   --events-out e.jsonl   dump the DBN head-to-head run's event trace
#include <cstdio>
#include <memory>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nvp/node_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_trace.hpp"
#include "obs/span.hpp"
#include "sched/lut_scheduler.hpp"
#include "solar/trace_generator.hpp"
#include "task/benchmarks.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace solsched;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("metrics-out", "", "write a metrics registry snapshot (JSON)");
  cli.add_flag("trace-out", "",
               "write Chrome trace_event JSON for chrome://tracing");
  cli.add_flag("events-out", "",
               "write the DBN head-to-head run's simulation events (JSONL)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(),
                 cli.usage("threshold_tuning").c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("threshold_tuning").c_str());
    return 0;
  }
  if (!cli.get("metrics-out").empty() || !cli.get("trace-out").empty())
    obs::set_enabled(true);
  if (!cli.get("trace-out").empty()) obs::set_trace_events_enabled(true);

  const solar::TimeGrid grid = solar::default_grid();
  const task::TaskGraph graph = task::wam_benchmark();

  solar::TraceGeneratorConfig gen_config;
  gen_config.seed = 2016;
  const solar::TraceGenerator generator(gen_config);
  const auto training =
      generator.generate_days(10, grid, solar::DayKind::kPartlyCloudy);
  const auto validation =
      generator.generate_days(5, grid, solar::DayKind::kOvercast);

  nvp::NodeConfig node;
  node.grid = grid;
  const core::TrainedController controller =
      core::train_pipeline(graph, training, node, core::PipelineConfig{});

  // --- E_th x delta sweep -------------------------------------------------
  std::printf("validation DMR over (E_th, delta):\n");
  util::TextTable table;
  table.set_header({"E_th \\ delta", "0.1", "0.3", "0.5", "1.0"});
  for (double e_th : {2.0, 10.0, 20.0, 40.0}) {
    std::vector<std::string> row{util::fmt(e_th, 0) + " J"};
    for (double delta : {0.1, 0.3, 0.5, 1.0}) {
      sched::ProposedConfig config = controller.online;
      config.e_th_j = e_th;
      config.delta = delta;
      sched::ProposedScheduler policy(controller.model, config);
      obs::SimTrace events;
      nvp::simulate(graph, validation, policy, controller.node, &events);
      row.push_back(util::fmt_pct(events.mean("deadline", "dmr")));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.str().c_str());

  // --- DBN online vs. raw LUT online --------------------------------------
  {
    auto dbn_policy = core::make_proposed(controller);
    obs::SimTrace dbn_events;
    nvp::simulate(graph, validation, *dbn_policy, controller.node,
                  &dbn_events);
    const double dbn_dmr = dbn_events.mean("deadline", "dmr");

    auto lut = std::make_shared<sched::Lut>(controller.lut);
    sched::LutScheduler lut_policy(lut, controller.node.capacities_f,
                                   graph.size(), controller.online);
    obs::SimTrace lut_events;
    nvp::simulate(graph, validation, lut_policy, controller.node,
                  &lut_events);
    const double lut_dmr = lut_events.mean("deadline", "dmr");
    std::printf("\nonline policy head-to-head: DBN %.1f%% vs raw LUT "
                "nearest-neighbour %.1f%% (LUT has %zu entries; the DBN "
                "compresses and generalizes them)\n",
                100.0 * dbn_dmr, 100.0 * lut_dmr, controller.lut.size());

    const std::string events_out = cli.get("events-out");
    if (!events_out.empty() &&
        core::write_text_file(events_out, dbn_events.to_jsonl()))
      std::printf("DBN run event trace written to %s\n", events_out.c_str());
  }

  const std::string metrics_out = cli.get("metrics-out");
  if (!metrics_out.empty() &&
      core::write_text_file(
          metrics_out, obs::MetricsRegistry::global().snapshot().to_json()))
    std::printf("metrics snapshot written to %s\n", metrics_out.c_str());
  const std::string trace_out = cli.get("trace-out");
  if (!trace_out.empty() && obs::write_chrome_trace(trace_out))
    std::printf("Chrome trace written to %s (open in chrome://tracing)\n",
                trace_out.c_str());
  return 0;
}
